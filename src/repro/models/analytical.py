"""The crude interpretable analytical cost model ``C`` (Section 6, Appendix G).

``C`` predicts a block's cost as the maximum over the costs of its individual
features::

    C(β) = max( cost_η(n),  max_i cost_inst(inst_i),  max_{δij} cost_dep(δij) )

with (Appendix G):

* ``cost_inst(inst)`` — the instruction's reciprocal throughput on the target
  micro-architecture (our uops.info stand-in tables),
* ``cost_dep(δij)`` — 0 for WAR/WAW hazards (false dependencies removable by
  renaming), and ``cost_inst(i) + cost_inst(j)`` for RAW hazards (the two
  instructions must execute back-to-back),
* ``cost_η(n) = n / issue_width`` — the front-end bound of the simple baseline
  model in Abel & Reineke (2022).

Because ``C`` is analytical, the features attaining the maximum are its
ground-truth explanation ``GT(β)`` (Eq. 9), which is what Table 2 scores
COMET against.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.bb.block import BasicBlock
from repro.bb.dependencies import (
    Dependency,
    DependencyKind,
    _tracked_accesses,
    raw_dependency_pairs,
)
from repro.bb.features import (
    DependencyFeature,
    Feature,
    InstructionFeature,
    NumInstructionsFeature,
)
from repro.isa.instructions import Instruction
from repro.models.base import CostModel
from repro.uarch.microarch import get_microarch
from repro.uarch.tables import instruction_cost_for

#: Costs attained by each feature of a block: feature -> cost contribution.
FeatureCosts = List[Tuple[Feature, float]]


class AnalyticalCostModel(CostModel):
    """The crude interpretable cost model ``C``."""

    def __init__(self, microarch="hsw") -> None:
        super().__init__(microarch)
        self.name = f"crude-analytical-{self.microarch.short_name}"
        # Instruction cost depends only on (mnemonic, loads, stores) for a
        # fixed micro-architecture, so batch prediction memoises the table
        # lookups on that key instead of re-deriving memory-form costs.
        self._throughput_memo: Dict[Tuple[str, bool, bool], float] = {}
        # Perturbed blocks share Instruction instances (replacements and
        # renames are cached objects), so the cost is additionally memoised
        # on the instance itself under a per-uarch attribute — the batch
        # loop then pays one dict lookup per instruction visit.
        self._cost_attr = f"_cost_{self.microarch.short_name}"
        # Selects the numpy gather/reduceat kernel instead of the per-block
        # loop; kept for the benchmark's pre-SoA baseline lane and the
        # batch-kernel parity test.
        self._use_reference_batch_kernel = False

    # -------------------------------------------------------- cost functions

    def cost_instruction(self, block: BasicBlock, index: int) -> float:
        """``cost_inst`` of Appendix G: the instruction's reciprocal throughput."""
        return float(
            instruction_cost_for(block[index], self.microarch).throughput
        )

    def cost_dependency(self, block: BasicBlock, dependency: Dependency) -> float:
        """``cost_dep`` of Appendix G (Eq. 10)."""
        if dependency.kind is not DependencyKind.RAW:
            return 0.0
        return self.cost_instruction(block, dependency.source) + self.cost_instruction(
            block, dependency.destination
        )

    def cost_num_instructions(self, block: BasicBlock) -> float:
        """``cost_η`` of Appendix G: the front-end issue bound ``n / width``."""
        return block.num_instructions / self.microarch.issue_width

    # --------------------------------------------------------------- predict

    def _predict(self, block: BasicBlock) -> float:
        costs = [cost for _, cost in feature_costs(block, self)]
        return max(costs)

    # --------------------------------------------------------- batch predict

    def _memoised_throughput(self, instruction: Instruction) -> float:
        key = (instruction.mnemonic, instruction.loads_memory, instruction.stores_memory)
        value = self._throughput_memo.get(key)
        if value is None:
            value = float(instruction_cost_for(instruction, self.microarch).throughput)
            self._throughput_memo[key] = value
        return value

    def _predict_batch(self, blocks: Sequence[BasicBlock]) -> List[float]:
        """Batch prediction as one tight per-block loop.

        Profiling the explanation hot loop showed the numpy gather/reduceat
        kernel (kept as :meth:`_predict_batch_reference`) dominated by
        per-element ``np.fromiter`` dispatch and memo-key hashing, not by the
        arithmetic: explanation batches are many *small* blocks, the worst
        shape for array kernels.  The loop form costs one instance-attribute
        lookup per instruction and a handful of float compares per block, and
        is bit-for-bit identical to both the reference kernel and the
        sequential :meth:`_predict` — the same table floats flow through the
        same IEEE additions, maxima and division.
        """
        if self._use_reference_batch_kernel:
            return self._predict_batch_reference(blocks)
        return self._predict_rows_batch([block.instructions for block in blocks])

    def _rows_kernel(self):
        """Encoded batches featurise straight from instruction rows.

        The fused loop below only ever reads ``block.instructions``, so the
        encoded pipeline skips block construction entirely.  The reference
        numpy kernel wants whole blocks (benchmark baseline lane), so it
        opts out and encoded batches materialise for it.
        """
        if self._use_reference_batch_kernel:
            return None
        return self._predict_rows_batch

    def _predict_rows_batch(
        self, rows: Sequence[Sequence[Instruction]]
    ) -> List[float]:
        cost_attr = self._cost_attr
        issue_width = self.microarch.issue_width
        out: List[float] = []
        for instructions in rows:
            costs: List[float] = []
            best = 0.0
            # One fused pass: instruction costs and RAW hazard costs
            # (nearest-writer, exactly the pairs raw_dependency_pairs
            # reports) in the same traversal.  Pair deduplication is
            # dropped because ``max`` is idempotent — a duplicate hazard
            # pair cannot change the block maximum.
            last_writer: Dict[tuple, int] = {}
            last_writer_get = last_writer.get
            for index, instruction in enumerate(instructions):
                cost = instruction.__dict__.get(cost_attr)
                if cost is None:
                    cost = self._memoised_throughput(instruction)
                    instruction.__dict__[cost_attr] = cost
                costs.append(cost)
                if cost > best:
                    best = cost
                accesses = instruction.__dict__.get("_tracked_accesses")
                if accesses is None:
                    accesses = _tracked_accesses(instruction)
                reads, writes = accesses
                for loc in reads:
                    source = last_writer_get(loc)
                    if source is not None:
                        dependency_cost = costs[source] + cost
                        if dependency_cost > best:
                            best = dependency_cost
                for loc in writes:
                    last_writer[loc] = index
            front_end = len(instructions) / issue_width
            if front_end > best:
                best = front_end
            out.append(best)
        return out

    def _predict_batch_reference(self, blocks: Sequence[BasicBlock]) -> List[float]:
        """The numpy gather/reduceat batch kernel (pre-SoA hot path).

        Per-instruction reciprocal throughputs of the whole batch are gathered
        into one flat array (table lookups memoised by instruction form);
        per-block maxima, the vectorized front-end bound and the RAW
        dependency costs (sums of endpoint costs, gathered by flat index) are
        then reduced with numpy.  Bit-for-bit identical to the sequential
        :meth:`_predict` — the same table floats flow through the same IEEE
        additions and maxima.
        """
        if not blocks:
            return []
        counts = np.array([block.num_instructions for block in blocks], dtype=np.intp)
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        flat_costs = np.fromiter(
            (
                self._memoised_throughput(instruction)
                for block in blocks
                for instruction in block.instructions
            ),
            dtype=np.float64,
            count=int(counts.sum()),
        )
        # max over instruction features, block by block.
        best = np.maximum.reduceat(flat_costs, offsets)
        # front-end bound cost_eta(n) = n / issue_width.
        np.maximum(best, counts / self.microarch.issue_width, out=best)
        # RAW dependency costs: cost(source) + cost(destination).  The lean
        # RAW-only scan yields the same hazard pairs as block.dependencies
        # without materialising the full dependency analysis per block.
        raw_sources: List[int] = []
        raw_destinations: List[int] = []
        raw_owners: List[int] = []
        for index, block in enumerate(blocks):
            base = offsets[index]
            for source, destination in raw_dependency_pairs(block.instructions):
                raw_sources.append(base + source)
                raw_destinations.append(base + destination)
                raw_owners.append(index)
        if raw_owners:
            dependency_costs = (
                flat_costs[np.array(raw_sources, dtype=np.intp)]
                + flat_costs[np.array(raw_destinations, dtype=np.intp)]
            )
            np.maximum.at(best, np.array(raw_owners, dtype=np.intp), dependency_costs)
        return [float(v) for v in best]


def feature_costs(block: BasicBlock, model: AnalyticalCostModel) -> FeatureCosts:
    """Per-feature cost contributions of ``block`` under model ``C``.

    The feature objects are identical to the ones
    :func:`repro.bb.features.extract_features` produces, so ground-truth
    explanations and COMET explanations can be compared with set operations.
    """
    out: FeatureCosts = []
    for index in range(block.num_instructions):
        feature = InstructionFeature.of(index, block[index])
        out.append((feature, model.cost_instruction(block, index)))
    for dependency in block.dependencies:
        feature = DependencyFeature.of(block, dependency)
        out.append((feature, model.cost_dependency(block, dependency)))
    out.append(
        (NumInstructionsFeature(block.num_instructions), model.cost_num_instructions(block))
    )
    return out


def ground_truth_explanations(
    block: BasicBlock, model: AnalyticalCostModel, *, tolerance: float = 1e-9
) -> List[Feature]:
    """``GT(β)`` (Eq. 9): every feature whose cost equals ``C(β)``.

    The returned list may contain several features (ties are common: e.g. a
    RAW dependency between two division instructions and the divisions
    themselves), in which case an explanation is judged accurate if it names
    at least one of them and nothing else (Section 6).
    """
    costs = feature_costs(block, model)
    maximum = max(cost for _, cost in costs)
    return [feature for feature, cost in costs if abs(cost - maximum) <= tolerance]


def ground_truth_feature_kinds(
    block: BasicBlock, model: AnalyticalCostModel
) -> Dict[str, int]:
    """Histogram of feature kinds in ``GT(β)`` (used by the fixed baseline)."""
    histogram: Dict[str, int] = {}
    for feature in ground_truth_explanations(block, model):
        histogram[feature.kind.value] = histogram.get(feature.kind.value, 0) + 1
    return histogram
