"""Ithemal-like hierarchical neural cost model in pure NumPy.

Ithemal (Mendis et al., 2019) embeds the tokens of each instruction, combines
them into instruction embeddings, runs an RNN over the instruction embeddings
and regresses block throughput from the final hidden state.  This module
reproduces that architecture class with the components available offline:

* a static token vocabulary derived from the ISA model (opcode mnemonics,
  register names, memory/immediate markers),
* learned token embeddings, mean-pooled into instruction embeddings,
* an LSTM over the instruction sequence (:mod:`repro.models.lstm`),
* a softplus-activated linear readout producing a positive throughput.

Training uses full backpropagation through the LSTM and the embeddings with
Adam, minimising squared *relative* error (throughputs span two orders of
magnitude, so absolute-error losses would be dominated by slow blocks).  The
substitution of mean pooling for Ithemal's token-level RNN is documented in
DESIGN.md; the resulting model keeps the properties the paper's evaluation
relies on (a black-box neural predictor, markedly less accurate than the
pipeline simulator, and systematically more sensitive to coarse block
features such as instruction count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.bb.block import BasicBlock
from repro.isa.opcodes import OPCODES
from repro.isa.operands import ImmediateOperand, MemoryOperand, RegisterOperand
from repro.isa.registers import REGISTERS
from repro.models.base import CostModel
from repro.models.lstm import AdamOptimizer, LSTMCell, LSTMLayer, sigmoid
from repro.utils.errors import ModelError
from repro.utils.rng import RandomSource, as_rng


class BlockTokenizer:
    """Maps instructions to token-id sequences using a static ISA vocabulary."""

    PAD = "<pad>"
    UNK = "<unk>"
    MEM = "<mem>"
    IMM = "<imm>"
    BLOCK_START = "<block>"

    def __init__(self) -> None:
        tokens: List[str] = [self.PAD, self.UNK, self.MEM, self.IMM, self.BLOCK_START]
        tokens.extend(sorted(OPCODES))
        tokens.extend(sorted(REGISTERS))
        self._token_to_id: Dict[str, int] = {tok: i for i, tok in enumerate(tokens)}
        self._id_to_token: List[str] = tokens

    @property
    def vocabulary_size(self) -> int:
        return len(self._id_to_token)

    def token_id(self, token: str) -> int:
        return self._token_to_id.get(token, self._token_to_id[self.UNK])

    def instruction_tokens(self, instruction) -> List[str]:
        """Token strings of one instruction: mnemonic then operand markers."""
        tokens = [instruction.mnemonic]
        for operand in instruction.operands:
            if isinstance(operand, RegisterOperand):
                tokens.append(operand.register.name)
            elif isinstance(operand, MemoryOperand):
                tokens.append(self.MEM)
                if operand.base is not None:
                    tokens.append(operand.base.name)
                if operand.index is not None:
                    tokens.append(operand.index.name)
            elif isinstance(operand, ImmediateOperand):
                tokens.append(self.IMM)
            else:  # pragma: no cover - labels never reach the cost models
                tokens.append(self.UNK)
        return tokens

    def encode_block(self, block: BasicBlock) -> List[List[int]]:
        """Token-id lists, one per instruction of ``block``."""
        return [
            [self.token_id(tok) for tok in self.instruction_tokens(inst)]
            for inst in block
        ]


@dataclass(frozen=True)
class IthemalConfig:
    """Architecture and training hyperparameters of the neural cost model."""

    embedding_size: int = 32
    hidden_size: int = 32
    learning_rate: float = 4e-3
    epochs: int = 6
    gradient_clip: float = 5.0
    validation_fraction: float = 0.1
    seed: int = 0
    min_prediction: float = 0.05

    def __post_init__(self) -> None:
        if self.embedding_size <= 0 or self.hidden_size <= 0:
            raise ValueError("embedding_size and hidden_size must be positive")
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")
        if not 0.0 <= self.validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0, 1)")


@dataclass
class TrainingHistory:
    """Per-epoch metrics recorded by :meth:`IthemalCostModel.train`."""

    train_loss: List[float] = field(default_factory=list)
    validation_mape: List[float] = field(default_factory=list)


def _softplus(x: float) -> float:
    if x > 30.0:
        return x
    return float(np.log1p(np.exp(x)))


#: Clamp on the log-throughput readout (throughputs never exceed e^12 cycles);
#: shared by the sequential and batched inference paths so they stay in sync.
_EXP_CLAMP_LIMIT = 12.0


def _exp_clamped(x: float, limit: float = _EXP_CLAMP_LIMIT) -> float:
    """``exp`` with the argument clamped."""
    return float(np.exp(min(max(x, -limit), limit)))


class IthemalCostModel(CostModel):
    """Hierarchical LSTM throughput predictor (Ithemal stand-in)."""

    def __init__(
        self,
        microarch="hsw",
        config: Optional[IthemalConfig] = None,
        rng: RandomSource = None,
    ) -> None:
        super().__init__(microarch)
        self.config = config or IthemalConfig()
        self.tokenizer = BlockTokenizer()
        self.name = f"ithemal-{self.microarch.short_name}"
        generator = as_rng(rng if rng is not None else self.config.seed)

        scale = 1.0 / np.sqrt(self.config.embedding_size)
        self.embedding = generator.normal(
            0.0, scale, size=(self.tokenizer.vocabulary_size, self.config.embedding_size)
        )
        self.lstm = LSTMLayer(
            LSTMCell.initialise(
                self.config.embedding_size, self.config.hidden_size, generator
            )
        )
        self.w_out = generator.normal(0.0, scale, size=self.config.hidden_size)
        self.b_out = np.zeros(1)
        self.trained = False
        self.history = TrainingHistory()
        # Per-instruction pooled-embedding memo for batched inference, keyed
        # by instruction content key (perturbed blocks share Instruction
        # instances, and identical content tokenises identically).  The memo
        # depends only on ``self.embedding``, so anything that mutates the
        # embedding matrix (training, load) must clear it.
        self._embed_memo: Dict[tuple, np.ndarray] = {}

    # ----------------------------------------------------------- parameters

    def parameters(self) -> Dict[str, np.ndarray]:
        """All trainable arrays, flattened into one named dict."""
        params = {
            "embedding": self.embedding,
            "w_out": self.w_out,
            "b_out": self.b_out,
        }
        for key, value in self.lstm.cell.parameters().items():
            params[f"lstm.{key}"] = value
        return params

    # -------------------------------------------------------------- forward

    def _instruction_embeddings(self, block: BasicBlock) -> Tuple[np.ndarray, List[List[int]]]:
        encoded = self.tokenizer.encode_block(block)
        embeddings = np.zeros((len(encoded), self.config.embedding_size))
        for row, token_ids in enumerate(encoded):
            if token_ids:
                embeddings[row] = self.embedding[token_ids].mean(axis=0)
        return embeddings, encoded

    def _forward(self, block: BasicBlock):
        inputs, encoded = self._instruction_embeddings(block)
        hidden_states, caches = self.lstm.forward(inputs)
        final_hidden = hidden_states[-1]
        raw = float(final_hidden @ self.w_out + self.b_out[0])
        # The readout regresses log-throughput: throughputs span two orders of
        # magnitude, so the exponential link keeps the loss well conditioned.
        prediction = max(_exp_clamped(raw), self.config.min_prediction)
        return prediction, raw, final_hidden, hidden_states, caches, inputs, encoded

    def _predict(self, block: BasicBlock) -> float:
        prediction, *_ = self._forward(block)
        return prediction

    def _embedding_for(self, instruction) -> np.ndarray:
        """Memoised mean-pooled token embedding of one instruction.

        Identical floats to the corresponding :meth:`_instruction_embeddings`
        row — same token ids gathered from the same embedding matrix — so the
        memo changes representation only, never predictions.
        """
        key = instruction.__dict__.get("_key") or instruction.key()
        vector = self._embed_memo.get(key)
        if vector is None:
            token_ids = [
                self.tokenizer.token_id(tok)
                for tok in self.tokenizer.instruction_tokens(instruction)
            ]
            vector = self.embedding[token_ids].mean(axis=0)
            self._embed_memo[key] = vector
        return vector

    def _predict_batch(self, blocks: Sequence[BasicBlock]) -> List[float]:
        """Batched inference: embeddings and the LSTM recurrence run over the
        whole batch at once (padded to the longest block), then one vectorized
        readout.  Equivalent to the sequential path up to BLAS summation
        order (agreement to ~1e-12 relative, verified by the parity tests).
        """
        return self._predict_rows_batch([block.instructions for block in blocks])

    def _rows_kernel(self):
        """Tokenisation only reads instructions, so encoded batches predict
        straight from rows — with re-tokenisation amortised away by the
        per-instruction embedding memo."""
        return self._predict_rows_batch

    def _predict_rows_batch(self, rows: Sequence[Sequence]) -> List[float]:
        if not rows:
            return []
        lengths = [len(instructions) for instructions in rows]
        steps = max(lengths)
        inputs = np.zeros((len(rows), steps, self.config.embedding_size))
        embedding_for = self._embedding_for
        for row, instructions in enumerate(rows):
            for position, instruction in enumerate(instructions):
                inputs[row, position] = embedding_for(instruction)
        final_hidden = self.lstm.forward_batch(inputs, lengths)
        raw = final_hidden @ self.w_out + self.b_out[0]
        clamped = np.exp(np.clip(raw, -_EXP_CLAMP_LIMIT, _EXP_CLAMP_LIMIT))
        return [float(v) for v in np.maximum(clamped, self.config.min_prediction)]

    # -------------------------------------------------------------- training

    def train(
        self,
        blocks: Sequence[BasicBlock],
        throughputs: Sequence[float],
        *,
        epochs: Optional[int] = None,
        rng: RandomSource = None,
    ) -> TrainingHistory:
        """Train on ``(blocks, throughputs)`` with Adam and relative-error loss."""
        if len(blocks) != len(throughputs):
            raise ModelError("blocks and throughputs must have the same length")
        if len(blocks) == 0:
            raise ModelError("cannot train on an empty dataset")
        epochs = self.config.epochs if epochs is None else epochs
        generator = as_rng(rng if rng is not None else self.config.seed + 1)
        # Training updates the embedding matrix in place every step, so the
        # pooled-embedding memo is stale from here on.
        self._embed_memo.clear()

        if not self.trained:
            # Start the readout bias at the mean log-target so early training
            # is not dominated by the output scale.
            targets = np.maximum(np.asarray(throughputs, dtype=float), 1e-3)
            self.b_out[0] = float(np.mean(np.log(targets)))

        indices = np.arange(len(blocks))
        n_validation = int(len(blocks) * self.config.validation_fraction)
        generator.shuffle(indices)
        validation_idx = indices[:n_validation]
        train_idx = indices[n_validation:]
        if len(train_idx) == 0:
            train_idx = indices
            validation_idx = indices[:0]

        optimizer = AdamOptimizer(self.parameters(), self.config.learning_rate)

        for _ in range(epochs):
            generator.shuffle(train_idx)
            losses = []
            for index in train_idx:
                loss = self._train_step(blocks[index], float(throughputs[index]), optimizer)
                losses.append(loss)
            self.history.train_loss.append(float(np.mean(losses)) if losses else 0.0)
            if len(validation_idx):
                mape = self.evaluate_mape(
                    [blocks[i] for i in validation_idx],
                    [float(throughputs[i]) for i in validation_idx],
                )
            else:
                mape = float("nan")
            self.history.validation_mape.append(mape)

        self.trained = True
        self._embed_memo.clear()
        return self.history

    def _train_step(self, block: BasicBlock, target: float, optimizer: AdamOptimizer) -> float:
        target = max(target, 1e-3)
        prediction, raw, final_hidden, hidden_states, caches, inputs, encoded = self._forward(block)

        # Squared error in log space: loss = (raw - log target)^2.
        residual = raw - float(np.log(target))
        loss = residual**2
        d_raw = 2.0 * residual

        grads: Dict[str, np.ndarray] = {
            "w_out": d_raw * final_hidden,
            "b_out": np.array([d_raw]),
            "embedding": np.zeros_like(self.embedding),
        }

        d_hidden = np.zeros_like(hidden_states)
        d_hidden[-1] = d_raw * self.w_out
        d_inputs, lstm_grads = self.lstm.backward(d_hidden, caches)
        for key, value in lstm_grads.items():
            grads[f"lstm.{key}"] = value

        for row, token_ids in enumerate(encoded):
            if not token_ids:
                continue
            share = d_inputs[row] / len(token_ids)
            for token_id in token_ids:
                grads["embedding"][token_id] += share

        optimizer.step(grads, clip_norm=self.config.gradient_clip)
        return float(loss)

    def evaluate_mape(
        self, blocks: Sequence[BasicBlock], throughputs: Sequence[float]
    ) -> float:
        """Mean absolute percentage error over a labelled set."""
        if len(blocks) == 0:
            return float("nan")
        errors = []
        for block, target in zip(blocks, throughputs):
            target = max(float(target), 1e-3)
            prediction = self._predict(block)
            errors.append(abs(prediction - target) / target)
        return 100.0 * float(np.mean(errors))

    # ------------------------------------------------------------- storage

    def save(self, path) -> None:
        """Serialise all parameters (and config) to an ``.npz`` file."""
        path = Path(path)
        arrays = {name: value for name, value in self.parameters().items()}
        arrays["config"] = np.array(
            [
                self.config.embedding_size,
                self.config.hidden_size,
                self.config.seed,
            ],
            dtype=np.int64,
        )
        np.savez(path, **arrays)

    @classmethod
    def load(cls, path, microarch="hsw") -> "IthemalCostModel":
        """Restore a model saved with :meth:`save`."""
        data = np.load(Path(path))
        embedding_size, hidden_size, seed = (int(v) for v in data["config"])
        config = IthemalConfig(
            embedding_size=embedding_size, hidden_size=hidden_size, seed=seed
        )
        model = cls(microarch, config)
        model.embedding[...] = data["embedding"]
        model.w_out[...] = data["w_out"]
        model.b_out[...] = data["b_out"]
        model.lstm.cell.w_x[...] = data["lstm.w_x"]
        model.lstm.cell.w_h[...] = data["lstm.w_h"]
        model.lstm.cell.bias[...] = data["lstm.bias"]
        model.trained = True
        model._embed_memo.clear()
        return model


def train_ithemal(
    blocks: Sequence[BasicBlock],
    throughputs: Sequence[float],
    microarch="hsw",
    config: Optional[IthemalConfig] = None,
    rng: RandomSource = None,
) -> IthemalCostModel:
    """Build and train an :class:`IthemalCostModel` in one call."""
    model = IthemalCostModel(microarch, config, rng=rng)
    model.train(blocks, throughputs, rng=rng)
    return model
