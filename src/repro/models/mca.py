"""LLVM-MCA-style bound-based cost model.

LLVM-MCA estimates block throughput mainly from port pressure and the length
of dependency chains without simulating the front end cycle by cycle.  The
paper cites it as a higher-error traditional model (Abel & Reineke 2022,
Table 1); this reproduction includes an analogous baseline:

``predict(β) = max(front-end bound, port-pressure bound, RAW critical path / II)``

It is used as an additional comparison model in the examples and as a sanity
bound in tests (a correct simulator should rarely predict below it).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.bb.block import BasicBlock
from repro.bb.dependencies import DependencyKind
from repro.bb.multigraph import DependencyGraph
from repro.models.base import CostModel
from repro.runtime.backend import ExecutionBackend
from repro.uarch.tables import block_reciprocal_throughput_bound, instruction_cost_for


class PortPressureCostModel(CostModel):
    """Throughput prediction from static port-pressure and latency bounds."""

    def __init__(
        self,
        microarch="hsw",
        *,
        dependency_weight: float = 0.5,
        batch_workers: int = 0,
        backend: Optional[ExecutionBackend] = None,
    ) -> None:
        super().__init__(microarch)
        if not 0.0 <= dependency_weight <= 1.0:
            raise ValueError("dependency_weight must be in [0, 1]")
        self.dependency_weight = dependency_weight
        self.name = f"port-pressure-{self.microarch.short_name}"
        self.batch_workers = batch_workers
        if backend is not None:
            self.set_backend(backend)

    def _predict(self, block: BasicBlock) -> float:
        resource_bound = block_reciprocal_throughput_bound(
            block.instructions, self.microarch
        )
        dependency_bound = self._loop_carried_latency(block)
        return max(resource_bound, self.dependency_weight * dependency_bound, 0.05)

    def _predict_batch(self, blocks: Sequence[BasicBlock]) -> List[float]:
        # Bound computations are independent per block; fan out when allowed.
        return self._fanout_predict_batch(blocks)

    def _loop_carried_latency(self, block: BasicBlock) -> float:
        """Longest RAW chain latency within one iteration of the block."""
        graph = DependencyGraph.of(block)

        def latency_of(index: int) -> float:
            return max(instruction_cost_for(block[index], self.microarch).latency, 1.0)

        return graph.critical_path_length(latency_of)
