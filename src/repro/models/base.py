"""The cost-model query interface and common wrappers.

COMET assumes *query access only* (Section 4): a cost model is any object
that maps a valid basic block to a real-valued cost.  The explanation
framework never inspects model internals, so every model here — analytical,
simulation-based or neural — hides behind the same two-method interface.

Queries come in two shapes:

* :meth:`CostModel.predict` — one block at a time (the paper's interface),
* :meth:`CostModel.predict_batch` — a whole batch in one call, which is what
  the batched explanation pipeline issues.  Subclasses override
  :meth:`CostModel._predict_batch` with vectorized (or fanned-out)
  implementations; the default simply loops, so every model is batch-safe.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bb.block import BasicBlock
from repro.runtime.backend import ExecutionBackend, ThreadBackend
from repro.uarch.microarch import MicroArchitecture, get_microarch
from repro.utils.errors import ModelError

_MISSING = object()


@dataclass(frozen=True)
class QueryTally:
    """A snapshot of one thread's query accounting on one model.

    ``queries`` counts inner-model evaluations; ``hits``/``misses`` are the
    cache-lookup split (always zero for uncached models).  Snapshots are
    per-thread, so deltas taken around a piece of work measure exactly that
    work even while other threads hammer the same shared model — which is
    what makes per-explanation ``num_queries`` exact under block sharding.

    ``perturbations``/``perturb_fallbacks`` mirror the same per-thread
    semantics for the Γ engine: how many perturbed blocks the calling thread
    drew, and how many of those silently fell back to the unperturbed block
    after ``max_block_attempts`` rejected candidates (see
    :func:`repro.perturb.algorithm.thread_perturb_tally`).

    ``encoded_rows``/``materialized_rows`` track the encoded pipeline the
    same way: rows Γ emitted without constructing a block versus block
    constructions (rows emitted materialised plus on-demand
    materialisations) — a healthy encoded run keeps ``materialized_rows``
    near the Γ fallback count, so a silent regression to the
    materialise-everything path is visible here (see
    :func:`repro.perturb.batch.thread_encoded_tally`).
    """

    queries: int
    hits: int = 0
    misses: int = 0
    perturbations: int = 0
    perturb_fallbacks: int = 0
    encoded_rows: int = 0
    materialized_rows: int = 0

    def delta(self, since: "QueryTally") -> "QueryTally":
        """The accounting accrued between ``since`` and this snapshot."""
        return QueryTally(
            queries=self.queries - since.queries,
            hits=self.hits - since.hits,
            misses=self.misses - since.misses,
            perturbations=self.perturbations - since.perturbations,
            perturb_fallbacks=self.perturb_fallbacks - since.perturb_fallbacks,
            encoded_rows=self.encoded_rows - since.encoded_rows,
            materialized_rows=self.materialized_rows - since.materialized_rows,
        )


class _ThreadTallies(threading.local):
    """Per-thread query/hit/miss accumulators (zero-initialised per thread)."""

    def __init__(self) -> None:
        self.queries = 0
        self.hits = 0
        self.misses = 0


class CostModel(ABC):
    """Abstract cost model: maps basic blocks to throughput costs (cycles)."""

    #: Human-readable model name (used in experiment tables).
    name: str = "cost-model"

    def __init__(self, microarch="hsw") -> None:
        self.microarch: MicroArchitecture = get_microarch(microarch)
        self.query_count = 0
        # Counter updates must be exact under concurrent callers (block
        # sharding runs shard threads against one shared model): the lock
        # makes the global totals lost-update-free, and the thread-local
        # tallies give each caller an interference-free per-request view.
        self._tally_lock = threading.Lock()
        self._thread_tallies = _ThreadTallies()
        #: Number of workers :meth:`_fanout_predict_batch` may use when no
        #: explicit backend is installed; ``0``/``1`` keeps batch prediction
        #: sequential.  Simulator-style models expose this knob in their
        #: constructors as a convenience — the model then builds (and owns)
        #: a :class:`~repro.runtime.backend.ThreadBackend` lazily.
        self.batch_workers = 0
        self._backend: Optional[ExecutionBackend] = None
        self._owns_backend = False

    @abstractmethod
    def _predict(self, block: BasicBlock) -> float:
        """Model-specific prediction (implemented by subclasses)."""

    def _predict_batch(self, blocks: Sequence[BasicBlock]) -> List[float]:
        """Model-specific batch prediction.

        The default loops over :meth:`_predict`; subclasses with a cheaper
        batched formulation (vectorized numpy, batched recurrence, backend
        fan-out) override this hook.  Implementations must return one cost per
        block, in input order, and must be numerically identical to the
        sequential path wherever exactness is achievable.
        """
        return [float(self._predict(block)) for block in blocks]

    def _rows_kernel(
        self,
    ) -> Optional[Callable[[Sequence[Sequence]], List[float]]]:
        """Instruction-row batch kernel, if this model can featurise from rows.

        An encoded :class:`~repro.perturb.batch.PerturbationBatch` carries
        resolved instruction references without constructing blocks.  Models
        whose featurization only reads ``block.instructions`` return a
        callable ``rows -> costs`` here (``rows`` being per-row instruction
        sequences in program order) and encoded batches then predict without
        materialising a single block.  The default — and any model needing
        the full block (simulators re-assemble ``block.text``) — returns
        ``None``, which routes encoded batches through on-demand
        materialisation instead.
        """
        return None

    # ------------------------------------------------------ execution backend

    @property
    def execution_backend(self) -> Optional[ExecutionBackend]:
        """The installed backend, materialising the ``batch_workers`` one.

        Returns ``None`` when prediction is (and should stay) in-process:
        no backend was installed and ``batch_workers`` does not ask for one.
        """
        if self._backend is None and self.batch_workers > 1:
            # Legacy knob: the model owns this backend and closes it.
            self._backend = ThreadBackend(self.batch_workers)
            self._owns_backend = True
        return self._backend

    def set_backend(
        self, backend: Optional[ExecutionBackend], *, own: bool = False
    ) -> "CostModel":
        """Install the execution backend batch prediction fans out on.

        The backend is validated against this model immediately (the process
        backend rejects non-picklable models here, with a clear error, rather
        than mid-search).  When ``own`` is true, :meth:`close` shuts the
        backend down; callers that share one backend across models (e.g. an
        :class:`~repro.runtime.session.ExplanationSession`) keep ownership.
        Any previously *owned* backend is closed.
        """
        if backend is not None:
            backend.prepare_model(self)
        if self._owns_backend and self._backend is not None and self._backend is not backend:
            self._backend.close()
        self._backend = backend
        self._owns_backend = own and backend is not None
        return self

    @contextmanager
    def using_backend(self, backend: ExecutionBackend):
        """Temporarily route batch prediction through ``backend``.

        The previous backend (and its ownership) is restored on exit, and is
        *not* closed — unlike :meth:`set_backend`, this is a borrow, for
        callers that need fan-out for one bounded piece of work (e.g. scoring
        a block set) without disturbing the model's configured substrate.
        """
        backend.prepare_model(self)
        prior, prior_owned = self._backend, self._owns_backend
        self._backend, self._owns_backend = backend, False
        try:
            yield self
        finally:
            self._backend, self._owns_backend = prior, prior_owned

    def _fanout_predict_batch(self, blocks: Sequence[BasicBlock]) -> List[float]:
        """Evaluate ``_predict`` through the execution backend (in order).

        Useful for simulator-style models whose per-block work is substantial
        and independent.  Without a backend (and without ``batch_workers``)
        this is a plain sequential loop.
        """
        backend = self.execution_backend
        if backend is None or backend.workers <= 1 or len(blocks) <= 1:
            return [float(self._predict(block)) for block in blocks]
        return [float(v) for v in backend.predict_blocks(self, blocks)]

    # -------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Release execution resources owned by this model.  Idempotent."""
        if self._owns_backend and self._backend is not None:
            self._backend.close()
        self._backend = None
        self._owns_backend = False

    def __enter__(self) -> "CostModel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __getstate__(self) -> dict:
        # Backends hold live pools and must not travel with the model (the
        # process backend pickles models into its workers; a worker-side
        # model predicts in-process).  Locks and thread-locals do not pickle;
        # they are rebuilt fresh on the receiving side.
        state = dict(self.__dict__)
        state["_backend"] = None
        state["_owns_backend"] = False
        state["_tally_lock"] = None
        state["_thread_tallies"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._tally_lock = threading.Lock()
        self._thread_tallies = _ThreadTallies()

    # ------------------------------------------------------ query accounting

    def _count_queries(self, count: int) -> None:
        """Record ``count`` inner-model evaluations, exactly.

        The global total is updated under the tally lock (concurrent shard
        threads must not lose updates); the calling thread's tally needs no
        lock because only that thread touches it.
        """
        with self._tally_lock:
            self.query_count += count
        self._thread_tallies.queries += count

    def query_tally(self) -> QueryTally:
        """The calling thread's accounting snapshot (see :class:`QueryTally`)."""
        # Imported lazily: repro.perturb.algorithm imports the model layer's
        # consumers, and the Γ counters are process-global per thread (not
        # per model), so the model interface only reads them on snapshot.
        from repro.perturb.algorithm import thread_perturb_tally
        from repro.perturb.batch import thread_encoded_tally

        tallies = self._thread_tallies
        perturb = thread_perturb_tally()
        encoded = thread_encoded_tally()
        return QueryTally(
            queries=tallies.queries,
            hits=tallies.hits,
            misses=tallies.misses,
            perturbations=perturb.perturbations,
            perturb_fallbacks=perturb.fallbacks,
            encoded_rows=encoded.encoded,
            materialized_rows=encoded.materialized,
        )

    def predict(self, block: BasicBlock) -> float:
        """Predicted throughput of ``block`` in cycles per iteration.

        Increments the query counter; COMET's evaluation reports how many
        queries an explanation required.
        """
        self._count_queries(1)
        value = float(self._predict(block))
        if not value >= 0.0:
            raise ModelError(
                f"{self.name} produced an invalid cost {value!r} for block:\n{block.text}"
            )
        return value

    def predict_batch(self, blocks: Sequence[BasicBlock]) -> List[float]:
        """Predict a batch of blocks through the batched query path.

        Counts one query per block (batching amortises cost, it does not hide
        work) and validates every prediction like :meth:`predict`.

        Encoded perturbation batches (duck-typed on the
        ``encoded_perturbations`` marker) predict through the model's row
        kernel when it has one — no block is ever constructed — and fall
        back to materialising the batch otherwise, which is exactly the
        pre-encoding behaviour.
        """
        if getattr(blocks, "encoded_perturbations", False):
            kernel = self._rows_kernel()
            if kernel is not None:
                return self._predict_encoded_batch(blocks, kernel)
            blocks = blocks.blocks()
        blocks = list(blocks)
        if not blocks:
            return []
        self._count_queries(len(blocks))
        values = [float(v) for v in self._predict_batch(blocks)]
        if len(values) != len(blocks):
            raise ModelError(
                f"{self.name} returned {len(values)} predictions for "
                f"{len(blocks)} blocks"
            )
        for value, block in zip(values, blocks):
            if not value >= 0.0:
                raise ModelError(
                    f"{self.name} produced an invalid cost {value!r} for block:\n{block.text}"
                )
        return values

    def _predict_encoded_batch(self, batch, kernel) -> List[float]:
        """Predict an encoded batch through ``kernel`` without materialising.

        Accounting and validation match :meth:`predict_batch` on the
        materialised blocks exactly; only the representation differs.  The
        offending row is materialised lazily when a prediction fails
        validation — the error path is the one place the block is needed.
        """
        from repro.perturb.batch import materialize_row, row_refs

        rows = batch.rows
        if not rows:
            return []
        self._count_queries(len(rows))
        values = [float(v) for v in kernel([row_refs(row) for row in rows])]
        if len(values) != len(rows):
            raise ModelError(
                f"{self.name} returned {len(values)} predictions for "
                f"{len(rows)} blocks"
            )
        for value, row in zip(values, rows):
            if not value >= 0.0:
                raise ModelError(
                    f"{self.name} produced an invalid cost {value!r} for block:\n"
                    f"{materialize_row(row).text}"
                )
        return values

    def predict_batch_segmented(
        self, segments: Sequence[Sequence[BasicBlock]]
    ) -> Tuple[List[List[float]], List[QueryTally], int]:
        """Predict several callers' block batches in one fused invocation.

        ``segments`` holds one block batch per logical caller (e.g. one per
        request whose KL-LUCB round was fused into this tick).  The
        concatenation is evaluated through a single :meth:`predict_batch`
        call and the predictions are split back per segment.

        Returns ``(values, tallies, shared_hits)``: ``values[i]`` are segment
        ``i``'s predictions in order, ``tallies[i]`` is its exact share of
        the query accounting (the tallies sum to what one fused
        :meth:`predict_batch` charges in total), and ``shared_hits`` counts
        lookups served by work another segment of the same fused batch paid
        for — always zero for uncached models, where every block is an
        inner evaluation charged to its own segment.

        When any segment arrives as an encoded perturbation batch the fused
        concatenation stays encoded, so the single :meth:`predict_batch`
        call below still reaches the model's row kernel.
        """
        encoded_type = next(
            (
                type(segment)
                for segment in segments
                if getattr(segment, "encoded_perturbations", False)
            ),
            None,
        )
        if encoded_type is not None:
            batches = [
                segment.rows
                if getattr(segment, "encoded_perturbations", False)
                else list(segment)
                for segment in segments
            ]
            flat = encoded_type([row for batch in batches for row in batch])
        else:
            batches = [list(batch) for batch in segments]
            flat = [block for batch in batches for block in batch]
        values = self.predict_batch(flat)
        out: List[List[float]] = []
        offset = 0
        for batch in batches:
            out.append(values[offset : offset + len(batch)])
            offset += len(batch)
        tallies = [QueryTally(queries=len(batch)) for batch in batches]
        return out, tallies, 0

    def predict_many(self, blocks: Iterable[BasicBlock]) -> List[float]:
        """Predict a batch of blocks (sequentially by default)."""
        return [self.predict(block) for block in blocks]

    def __call__(self, block: BasicBlock) -> float:
        return self.predict(block)

    def describe(self) -> str:
        """One-line description used in logs and reports."""
        return f"{self.name} ({self.microarch.name})"


class CallableCostModel(CostModel):
    """Adapter turning any ``block -> float`` callable into a :class:`CostModel`.

    Useful for testing the explainer against synthetic models (e.g. the
    "8 instructions costs 2 cycles" toy model ``M1`` of Section 4).
    """

    def __init__(self, fn: Callable[[BasicBlock], float], name: str = "callable", microarch="hsw") -> None:
        super().__init__(microarch)
        self._fn = fn
        self.name = name

    def _predict(self, block: BasicBlock) -> float:
        return float(self._fn(block))


class CachedCostModel(CostModel):
    """Memoising LRU wrapper around another cost model.

    The perturbation-based search frequently re-queries identical blocks
    (e.g. the unperturbed block, or perturbations that happen to collide);
    caching by block content avoids repeated simulator or neural-network
    work without changing observable behaviour.  When the cache fills up the
    least-recently-used entry is evicted, so long explanation campaigns keep
    their working set hot instead of silently degrading to no caching.

    Query accounting: :attr:`query_count` reflects *inner-model* work only —
    cache hits are free, so :class:`QueryCounter` reports how many real model
    evaluations a piece of code cost.  Global totals are exact under
    concurrent callers (lock-protected), and every counting site also feeds
    the calling thread's :meth:`~CostModel.query_tally` so per-request
    deltas are interference-free under block sharding.
    """

    def __init__(self, inner: CostModel, max_entries: int = 100_000) -> None:
        super().__init__(inner.microarch)
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.inner = inner
        self.name = inner.name
        self.max_entries = max_entries
        self._cache: "OrderedDict[tuple, float]" = OrderedDict()
        # Cache bookkeeping must survive concurrent callers (block-sharded
        # explain_many runs shard threads against one shared wrapper): the
        # lock covers lookups, stores, LRU eviction and the hit/miss
        # counters.  It is never held while the inner model computes, so
        # misses from different threads still run concurrently.
        self._cache_lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state["_cache_lock"] = None  # locks do not pickle (process workers)
        return state

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self._cache_lock = threading.Lock()

    @property
    def execution_backend(self) -> Optional[ExecutionBackend]:
        return self.inner.execution_backend

    def set_backend(
        self, backend: Optional[ExecutionBackend], *, own: bool = False
    ) -> "CostModel":
        """Backends belong to the inner model — misses fan out, hits are free."""
        self.inner.set_backend(backend, own=own)
        return self

    def using_backend(self, backend: ExecutionBackend):
        return self.inner.using_backend(backend)

    def close(self) -> None:
        self.inner.close()
        super().close()

    # ----------------------------------------------------------- cache plumbing

    def _store(self, key: tuple, value: float) -> None:
        self._cache[key] = value
        self._cache.move_to_end(key)
        while len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)

    def _lookup(self, key: tuple):
        value = self._cache.get(key, _MISSING)
        if value is not _MISSING:
            self._cache.move_to_end(key)
        return value

    # ------------------------------------------------------------------ queries

    def _predict(self, block: BasicBlock) -> float:
        return self.predict(block)

    def predict(self, block: BasicBlock) -> float:
        key = block.key()
        tallies = self._thread_tallies
        with self._cache_lock:
            value = self._lookup(key)
            if value is not _MISSING:
                self.hits += 1
                tallies.hits += 1
                return value
            self.misses += 1
            self.query_count += 1
            tallies.misses += 1
            tallies.queries += 1
        value = self.inner.predict(block)
        with self._cache_lock:
            self._store(key, value)
        return value

    def predict_batch(self, blocks: Sequence[BasicBlock]) -> List[float]:
        """Batch prediction with intra-batch dedup.

        The batch is deduplicated by block content: cache hits are served
        directly, each distinct missing block is queried exactly once through
        one ``inner.predict_batch`` call, and duplicates within the batch
        share the result (they count as hits, exactly as they would have on
        the sequential path).

        Encoded perturbation batches are deduplicated without materialising:
        an encoded row's ``key()`` is identical to its block's content key,
        so hits collide with entries cached on any path, and only the
        distinct misses travel onward (still encoded) to the inner model.
        """
        encoded_type = None
        if getattr(blocks, "encoded_perturbations", False):
            encoded_type = type(blocks)
            rows = blocks.rows
        else:
            rows = list(blocks)
        if not rows:
            return []
        keys = [row.key() for row in rows]
        results: List[Optional[float]] = [None] * len(rows)
        miss_order: List[tuple] = []
        miss_rows: List[BasicBlock] = []
        pending: Dict[tuple, List[int]] = {}
        tallies = self._thread_tallies
        hit_count = 0
        with self._cache_lock:
            # The loop body runs once per query of the whole explanation hot
            # path, so the counters are accumulated locally and flushed once
            # per batch (same totals, a fraction of the attribute traffic).
            cache_get = self._cache.get
            cache_touch = self._cache.move_to_end
            for position, (row, key) in enumerate(zip(rows, keys)):
                bucket = pending.get(key)
                if bucket is not None:
                    # Duplicate of a block already being queried in this batch.
                    hit_count += 1
                    bucket.append(position)
                    continue
                value = cache_get(key, _MISSING)
                if value is not _MISSING:
                    cache_touch(key)
                    hit_count += 1
                    results[position] = value
                    continue
                pending[key] = [position]
                miss_order.append(key)
                miss_rows.append(row)
            miss_count = len(miss_rows)
            self.hits += hit_count
            tallies.hits += hit_count
            self.misses += miss_count
            tallies.misses += miss_count
            if miss_rows:
                self.query_count += miss_count
                tallies.queries += miss_count
        if miss_rows:
            misses = encoded_type(miss_rows) if encoded_type is not None else miss_rows
            values = self.inner.predict_batch(misses)
            with self._cache_lock:
                for key, value in zip(miss_order, values):
                    self._store(key, value)
                    for position in pending[key]:
                        results[position] = value
        return results  # type: ignore[return-value]

    def predict_batch_segmented(
        self, segments: Sequence[Sequence[BasicBlock]]
    ) -> Tuple[List[List[float]], List[QueryTally], int]:
        """Fused batch prediction with per-segment query accounting.

        Cache semantics match :meth:`predict_batch` on the concatenation
        exactly — same dedup, same global totals, same single
        ``inner.predict_batch`` call.  On top of that, every lookup is
        attributed to the segment it belongs to: a distinct missing block is
        a miss (and one inner query) for the *first* segment that asks for
        it; later occurrences anywhere in the fused batch are hits for the
        segment they appear in, and those served across segment boundaries
        are additionally reported as ``shared_hits`` — the dedupe the fused
        tick got for free by batching requests together.

        Segments may mix encoded batches and plain block lists freely (a
        fused tick can serve requests from both pipelines): encoded rows key
        and dedupe against cached blocks without materialising, and the
        distinct misses are forwarded as one encoded batch whenever any
        segment arrived encoded.
        """
        encoded_type = None
        batches: List[Sequence] = []
        for segment in segments:
            if getattr(segment, "encoded_perturbations", False):
                encoded_type = type(segment)
                batches.append(segment.rows)
            else:
                batches.append(list(segment))
        results: List[List[Optional[float]]] = [[None] * len(batch) for batch in batches]
        miss_order: List[tuple] = []
        miss_rows: List[BasicBlock] = []
        pending: Dict[tuple, List[Tuple[int, int]]] = {}
        first_segment: Dict[tuple, int] = {}
        per_segment = [[0, 0, 0] for _ in batches]  # queries, hits, misses
        shared_hits = 0
        tallies = self._thread_tallies
        with self._cache_lock:
            for index, batch in enumerate(batches):
                for position, row in enumerate(batch):
                    key = row.key()
                    if key in pending:
                        # Duplicate of a block already being queried in this
                        # fused batch (same or earlier segment).
                        self.hits += 1
                        tallies.hits += 1
                        per_segment[index][1] += 1
                        if first_segment[key] != index:
                            shared_hits += 1
                        pending[key].append((index, position))
                        continue
                    value = self._lookup(key)
                    if value is not _MISSING:
                        self.hits += 1
                        tallies.hits += 1
                        per_segment[index][1] += 1
                        results[index][position] = value
                        continue
                    self.misses += 1
                    tallies.misses += 1
                    per_segment[index][2] += 1
                    pending[key] = [(index, position)]
                    first_segment[key] = index
                    miss_order.append(key)
                    miss_rows.append(row)
            if miss_rows:
                self.query_count += len(miss_rows)
                tallies.queries += len(miss_rows)
                for key in miss_order:
                    per_segment[first_segment[key]][0] += 1
        if miss_rows:
            misses = encoded_type(miss_rows) if encoded_type is not None else miss_rows
            values = self.inner.predict_batch(misses)
            with self._cache_lock:
                for key, value in zip(miss_order, values):
                    self._store(key, value)
                    for index, position in pending[key]:
                        results[index][position] = value
        segment_tallies = [
            QueryTally(queries=q, hits=h, misses=m) for q, h, m in per_segment
        ]
        return results, segment_tallies, shared_hits  # type: ignore[return-value]

    @property
    def hit_rate(self) -> float:
        """Cache hit rate over the lifetime of this wrapper."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class QueryCounter:
    """Context manager measuring how many queries a piece of code issued.

    The measurement is scoped to the *calling thread* (via
    :meth:`CostModel.query_tally`), so a search running on one shard thread
    counts exactly its own queries even while other shards hammer the same
    shared model — this is what makes per-explanation ``num_queries``
    identical between the sequential loop and sharded ``explain_many``.
    ``hits``/``misses`` carry the cache-lookup split for cached models.
    """

    def __init__(self, model: CostModel) -> None:
        self.model = model
        self.start = QueryTally(0)
        self.queries = 0
        self.hits = 0
        self.misses = 0

    def __enter__(self) -> "QueryCounter":
        self.start = self.model.query_tally()
        return self

    def __exit__(self, *exc_info) -> None:
        delta = self.model.query_tally().delta(self.start)
        self.queries = delta.queries
        self.hits = delta.hits
        self.misses = delta.misses
