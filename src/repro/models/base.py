"""The cost-model query interface and common wrappers.

COMET assumes *query access only* (Section 4): a cost model is any object
that maps a valid basic block to a real-valued cost.  The explanation
framework never inspects model internals, so every model here — analytical,
simulation-based or neural — hides behind the same two-method interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.bb.block import BasicBlock
from repro.uarch.microarch import MicroArchitecture, get_microarch
from repro.utils.errors import ModelError


class CostModel(ABC):
    """Abstract cost model: maps basic blocks to throughput costs (cycles)."""

    #: Human-readable model name (used in experiment tables).
    name: str = "cost-model"

    def __init__(self, microarch="hsw") -> None:
        self.microarch: MicroArchitecture = get_microarch(microarch)
        self.query_count = 0

    @abstractmethod
    def _predict(self, block: BasicBlock) -> float:
        """Model-specific prediction (implemented by subclasses)."""

    def predict(self, block: BasicBlock) -> float:
        """Predicted throughput of ``block`` in cycles per iteration.

        Increments the query counter; COMET's evaluation reports how many
        queries an explanation required.
        """
        self.query_count += 1
        value = float(self._predict(block))
        if not value >= 0.0:
            raise ModelError(
                f"{self.name} produced an invalid cost {value!r} for block:\n{block.text}"
            )
        return value

    def predict_many(self, blocks: Iterable[BasicBlock]) -> List[float]:
        """Predict a batch of blocks (sequentially by default)."""
        return [self.predict(block) for block in blocks]

    def __call__(self, block: BasicBlock) -> float:
        return self.predict(block)

    def describe(self) -> str:
        """One-line description used in logs and reports."""
        return f"{self.name} ({self.microarch.name})"


class CallableCostModel(CostModel):
    """Adapter turning any ``block -> float`` callable into a :class:`CostModel`.

    Useful for testing the explainer against synthetic models (e.g. the
    "8 instructions costs 2 cycles" toy model ``M1`` of Section 4).
    """

    def __init__(self, fn: Callable[[BasicBlock], float], name: str = "callable", microarch="hsw") -> None:
        super().__init__(microarch)
        self._fn = fn
        self.name = name

    def _predict(self, block: BasicBlock) -> float:
        return float(self._fn(block))


class CachedCostModel(CostModel):
    """Memoising wrapper around another cost model.

    The perturbation-based search frequently re-queries identical blocks
    (e.g. the unperturbed block, or perturbations that happen to collide);
    caching by block content avoids repeated simulator or neural-network
    work without changing observable behaviour.
    """

    def __init__(self, inner: CostModel, max_entries: int = 100_000) -> None:
        super().__init__(inner.microarch)
        self.inner = inner
        self.name = inner.name
        self.max_entries = max_entries
        self._cache: Dict[tuple, float] = {}
        self.hits = 0
        self.misses = 0

    def _predict(self, block: BasicBlock) -> float:
        key = block.key()
        if key in self._cache:
            self.hits += 1
            return self._cache[key]
        self.misses += 1
        value = self.inner.predict(block)
        if len(self._cache) < self.max_entries:
            self._cache[key] = value
        return value

    @property
    def hit_rate(self) -> float:
        """Cache hit rate over the lifetime of this wrapper."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class QueryCounter:
    """Context manager measuring how many queries a piece of code issued."""

    def __init__(self, model: CostModel) -> None:
        self.model = model
        self.start = 0
        self.queries = 0

    def __enter__(self) -> "QueryCounter":
        self.start = self.model.query_count
        return self

    def __exit__(self, *exc_info) -> None:
        self.queries = self.model.query_count - self.start
