"""Cost models: the systems COMET explains.

All models implement the :class:`~repro.models.base.CostModel` query
interface (``predict(block) -> cycles``), which is the only access COMET
assumes (Section 4).  The package provides:

* :class:`AnalyticalCostModel` — the crude interpretable model ``C`` of
  Section 6 used to compute ground-truth explanations,
* :class:`UiCACostModel` — a simulation-based model built on the
  out-of-order pipeline simulator (stand-in for uiCA),
* :class:`PortPressureCostModel` — an LLVM-MCA-style bound-based baseline,
* :class:`IthemalCostModel` — a hierarchical LSTM neural model in pure NumPy
  (stand-in for Ithemal).
"""

from repro.models.base import (
    CostModel,
    CachedCostModel,
    QueryCounter,
    QueryTally,
    CallableCostModel,
)
from repro.models.analytical import (
    AnalyticalCostModel,
    ground_truth_explanations,
    feature_costs,
)
from repro.models.pipeline import PipelineSimulator, SimulationConfig, SimulationResult
from repro.models.uica import UiCACostModel
from repro.models.mca import PortPressureCostModel
from repro.models.lstm import LSTMCell, LSTMLayer, sequence_final_state
from repro.models.ithemal import (
    IthemalCostModel,
    IthemalConfig,
    BlockTokenizer,
    train_ithemal,
)
from repro.models.registry import build_cost_model, available_cost_models

__all__ = [
    "CostModel",
    "CachedCostModel",
    "QueryCounter",
    "QueryTally",
    "CallableCostModel",
    "AnalyticalCostModel",
    "ground_truth_explanations",
    "feature_costs",
    "PipelineSimulator",
    "SimulationConfig",
    "SimulationResult",
    "UiCACostModel",
    "PortPressureCostModel",
    "LSTMCell",
    "LSTMLayer",
    "sequence_final_state",
    "IthemalCostModel",
    "IthemalConfig",
    "BlockTokenizer",
    "train_ithemal",
    "build_cost_model",
    "available_cost_models",
]
