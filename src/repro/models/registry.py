"""Cost-model registry: build models by name.

The evaluation harness and the example scripts refer to models by short names
(``"ithemal"``, ``"uica"``, ``"crude"``, ``"port-pressure"``); this module
centralises their construction so every experiment builds them the same way.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel, CostModel
from repro.models.ithemal import IthemalConfig, IthemalCostModel, train_ithemal
from repro.models.mca import PortPressureCostModel
from repro.models.uica import UiCACostModel
from repro.runtime.backend import BackendSource, resolve_backend
from repro.utils.errors import ReproError


def available_cost_models() -> Tuple[str, ...]:
    """Short names accepted by :func:`build_cost_model`."""
    return ("crude", "uica", "port-pressure", "ithemal")


def build_cost_model(
    name: str,
    microarch="hsw",
    *,
    training_blocks: Optional[Sequence] = None,
    training_throughputs: Optional[Sequence[float]] = None,
    ithemal_config: Optional[IthemalConfig] = None,
    cached: bool = True,
    batch_workers: int = 0,
    backend: BackendSource = None,
    workers: Optional[int] = None,
) -> CostModel:
    """Build a cost model by short name.

    ``"ithemal"`` requires ``training_blocks``/``training_throughputs`` (the
    neural model must be trained before it can be explained); the other models
    are analytical or simulation based and need no data.  When ``cached`` is
    true the model is wrapped in a :class:`CachedCostModel`, which is what the
    explanation workload wants.

    ``backend`` selects the execution substrate batch prediction fans out on
    (a short name — ``"serial"``/``"thread"``/``"process"`` — or a constructed
    :class:`~repro.runtime.backend.ExecutionBackend`); ``workers`` sizes it.
    The model owns a backend built here and releases it on ``close()``.  The
    legacy ``batch_workers`` knob is kept as a shorthand for a model-owned
    thread backend.
    """
    key = name.strip().lower()
    model: CostModel
    if key in ("crude", "analytical", "c"):
        model = AnalyticalCostModel(microarch)
    elif key == "uica":
        model = UiCACostModel(microarch, batch_workers=batch_workers)
    elif key in ("port-pressure", "mca", "llvm-mca"):
        model = PortPressureCostModel(microarch, batch_workers=batch_workers)
    elif key == "ithemal":
        if training_blocks is None or training_throughputs is None:
            raise ReproError(
                "building the ithemal model requires training_blocks and "
                "training_throughputs (see repro.data.BHiveDataset)"
            )
        model = train_ithemal(
            training_blocks, training_throughputs, microarch, ithemal_config
        )
    else:
        raise ReproError(
            f"unknown cost model {name!r}; available: {available_cost_models()}"
        )
    wrapped = CachedCostModel(model) if cached else model
    if backend is not None:
        wrapped.set_backend(resolve_backend(backend, workers), own=True)
    return wrapped
