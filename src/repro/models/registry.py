"""Cost-model registry: build models by name.

The evaluation harness and the example scripts refer to models by short names
(``"ithemal"``, ``"uica"``, ``"crude"``, ``"port-pressure"``); this module
centralises their construction so every experiment builds them the same way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Sequence, Tuple

from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel, CostModel
from repro.models.ithemal import IthemalConfig, IthemalCostModel, train_ithemal
from repro.models.mca import PortPressureCostModel
from repro.models.uica import UiCACostModel
from repro.runtime.backend import BackendSource, resolve_backend
from repro.utils.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.explain.config import ExplainerConfig
    from repro.runtime.session import ExplanationSession


def available_cost_models() -> Tuple[str, ...]:
    """Short names accepted by :func:`build_cost_model`."""
    return ("crude", "uica", "port-pressure", "ithemal")


def build_cost_model(
    name: str,
    microarch="hsw",
    *,
    training_blocks: Optional[Sequence] = None,
    training_throughputs: Optional[Sequence[float]] = None,
    ithemal_config: Optional[IthemalConfig] = None,
    cached: bool = True,
    batch_workers: int = 0,
    backend: BackendSource = None,
    workers: Optional[int] = None,
) -> CostModel:
    """Build a cost model by short name.

    ``"ithemal"`` requires ``training_blocks``/``training_throughputs`` (the
    neural model must be trained before it can be explained); the other models
    are analytical or simulation based and need no data.  When ``cached`` is
    true the model is wrapped in a :class:`CachedCostModel`, which is what the
    explanation workload wants.

    ``backend`` selects the execution substrate batch prediction fans out on
    (a short name — ``"serial"``/``"thread"``/``"process"`` — or a constructed
    :class:`~repro.runtime.backend.ExecutionBackend`); ``workers`` sizes it.
    The model owns a backend built here and releases it on ``close()``.  The
    legacy ``batch_workers`` knob is kept as a shorthand for a model-owned
    thread backend.
    """
    key = name.strip().lower()
    model: CostModel
    if key in ("crude", "analytical", "c"):
        model = AnalyticalCostModel(microarch)
    elif key == "uica":
        model = UiCACostModel(microarch, batch_workers=batch_workers)
    elif key in ("port-pressure", "mca", "llvm-mca"):
        model = PortPressureCostModel(microarch, batch_workers=batch_workers)
    elif key == "ithemal":
        if training_blocks is None or training_throughputs is None:
            raise ReproError(
                "building the ithemal model requires training_blocks and "
                "training_throughputs (see repro.data.BHiveDataset)"
            )
        model = train_ithemal(
            training_blocks, training_throughputs, microarch, ithemal_config
        )
    else:
        raise ReproError(
            f"unknown cost model {name!r}; available: {available_cost_models()}"
        )
    wrapped = CachedCostModel(model) if cached else model
    if backend is not None:
        wrapped.set_backend(resolve_backend(backend, workers), own=True)
    return wrapped


def build_session(
    name: str,
    microarch="hsw",
    *,
    config: Optional["ExplainerConfig"] = None,
    backend: BackendSource = None,
    workers: Optional[int] = None,
    rng=None,
    cache_entries: int = 100_000,
    max_population_records: int = 256,
    result_cache=None,
    **model_kwargs,
) -> "ExplanationSession":
    """Build a warm :class:`~repro.runtime.session.ExplanationSession` by model name.

    This is the one construction path for every long-lived serving surface
    (the explanation service's per-model pool, benchmark warm runs, scripts):
    the registry builds the cached model, the session resolves — and owns —
    the execution backend and the run-level shared state.  Closing the
    returned session releases the backend; ``model_kwargs`` are forwarded to
    :func:`build_cost_model` (e.g. ``training_blocks`` for ``"ithemal"``).
    """
    from repro.runtime.session import ExplanationSession

    # The session wraps the raw model itself so ``cache_entries`` actually
    # sizes the LRU (a pre-wrapped model would keep its own default bound).
    model = build_cost_model(name, microarch, cached=False, **model_kwargs)
    return ExplanationSession(
        model,
        config,
        backend=backend,
        workers=workers,
        rng=rng,
        cache_entries=cache_entries,
        max_population_records=max_population_records,
        result_cache=result_cache,
    )
