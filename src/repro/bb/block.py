"""The :class:`BasicBlock` value object.

A basic block is an ordered sequence of instructions with no control flow in
or out of the middle.  Blocks are immutable: the perturbation algorithm always
builds new blocks rather than mutating existing ones, so a cost model's cache
or an explanation's record of the original block can never be corrupted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from functools import cached_property
from typing import List, Optional, Sequence, Tuple

from repro.bb.dependencies import Dependency, find_dependencies
from repro.isa.formatter import format_block_lines, format_instruction
from repro.isa.instructions import Instruction
from repro.isa.parser import parse_block_text
from repro.isa.validation import validate_block_instructions
from repro.utils.errors import ValidationError


class BlockCategory(str, Enum):
    """BHive-style block categories (Chen et al., 2019; paper Appendix H.1).

    Blocks that touch memory are categorised by their access pattern; pure
    compute blocks by whether they use scalar, vector or both kinds of
    instructions.
    """

    LOAD = "Load"
    STORE = "Store"
    LOAD_STORE = "Load/Store"
    SCALAR = "Scalar"
    VECTOR = "Vector"
    SCALAR_VECTOR = "Scalar/Vector"


@dataclass(frozen=True)
class BasicBlock:
    """An immutable sequence of instructions plus optional metadata.

    Attributes
    ----------
    instructions:
        The instructions in program order.
    source:
        Optional provenance tag mimicking BHive's "source" partition
        (e.g. ``"clang"`` or ``"openblas"``).
    block_id:
        Optional stable identifier assigned by the dataset generator.
    """

    instructions: Tuple[Instruction, ...]
    source: Optional[str] = None
    block_id: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "instructions", tuple(self.instructions))
        if len(self.instructions) == 0:
            raise ValidationError("a basic block must contain at least one instruction")

    # ------------------------------------------------------------- creation

    @classmethod
    def from_text(
        cls,
        text: str,
        *,
        source: Optional[str] = None,
        block_id: Optional[str] = None,
        validate: bool = True,
    ) -> "BasicBlock":
        """Parse a multi-line Intel-syntax listing into a block."""
        instructions = tuple(parse_block_text(text))
        if validate:
            validate_block_instructions(instructions)
        return cls(instructions, source=source, block_id=block_id)

    @classmethod
    def from_instructions(
        cls,
        instructions: Sequence[Instruction],
        *,
        source: Optional[str] = None,
        block_id: Optional[str] = None,
        validate: bool = True,
    ) -> "BasicBlock":
        """Build a block from already-constructed instructions."""
        instructions = tuple(instructions)
        if validate:
            validate_block_instructions(instructions)
        return cls(instructions, source=source, block_id=block_id)

    # ------------------------------------------------------------ properties

    @property
    def num_instructions(self) -> int:
        """Number of instructions in the block (the paper's ``η`` feature)."""
        return len(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    @cached_property
    def text(self) -> str:
        """The block formatted back to Intel syntax, one instruction per line."""
        return format_block_lines(self.instructions)

    @cached_property
    def dependencies(self) -> Tuple[Dependency, ...]:
        """All data-dependency hazards of this block."""
        return tuple(find_dependencies(self.instructions))

    @cached_property
    def category(self) -> BlockCategory:
        """The BHive-style category of this block."""
        return classify_block(self)

    def key(self) -> Tuple:
        """Hashable content key (ignores metadata) for caching and dedup.

        Memoised on the instance: the query cache, session sharding and the
        result cache all re-key the same block objects in hot loops.
        """
        key = self.__dict__.get("_key")
        if key is None:
            # Inlined Instruction.key() memo: perturbed blocks are keyed once
            # each on the model-cache hot path, where the per-instruction
            # method-call overhead was measurable.
            key = self.__dict__["_key"] = tuple(
                inst.__dict__.get("_key") or inst.key()
                for inst in self.instructions
            )
        return key

    def __hash__(self) -> int:
        return hash(self.key())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BasicBlock):
            return NotImplemented
        return self.key() == other.key()

    # -------------------------------------------------------------- rewrite

    def with_instructions(self, instructions: Sequence[Instruction]) -> "BasicBlock":
        """A copy of this block (keeping metadata) with new instructions."""
        return BasicBlock(
            tuple(instructions), source=self.source, block_id=self.block_id
        )

    def replace_instruction(self, index: int, instruction: Instruction) -> "BasicBlock":
        """A copy with the instruction at ``index`` replaced."""
        new = list(self.instructions)
        new[index] = instruction
        return self.with_instructions(new)

    def delete_instruction(self, index: int) -> "BasicBlock":
        """A copy with the instruction at ``index`` removed."""
        new = list(self.instructions)
        del new[index]
        return self.with_instructions(new)

    # --------------------------------------------------------------- dunder

    def __str__(self) -> str:
        return self.text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        summary = "; ".join(format_instruction(i) for i in self.instructions[:3])
        if len(self.instructions) > 3:
            summary += "; ..."
        return f"<BasicBlock n={self.num_instructions} [{summary}]>"


def classify_block(block: BasicBlock) -> BlockCategory:
    """Assign a BHive-style category to ``block`` (see :class:`BlockCategory`)."""
    loads = any(inst.loads_memory for inst in block)
    stores = any(inst.stores_memory for inst in block)
    if loads and stores:
        return BlockCategory.LOAD_STORE
    if loads:
        return BlockCategory.LOAD
    if stores:
        return BlockCategory.STORE
    vector = any(inst.is_vector for inst in block)
    scalar = any(not inst.is_vector and inst.category != "nop" for inst in block)
    if vector and scalar:
        return BlockCategory.SCALAR_VECTOR
    if vector:
        return BlockCategory.VECTOR
    return BlockCategory.SCALAR
