"""Basic-block representation: dependencies, multigraph, explanation features."""

from repro.bb.block import BasicBlock, BlockCategory, classify_block
from repro.bb.dependencies import (
    Dependency,
    DependencyKind,
    find_dependencies,
)
from repro.bb.multigraph import DependencyGraph, build_multigraph
from repro.bb.features import (
    Feature,
    FeatureKind,
    InstructionFeature,
    DependencyFeature,
    NumInstructionsFeature,
    extract_features,
    feature_present,
    features_present,
)

__all__ = [
    "BasicBlock",
    "BlockCategory",
    "classify_block",
    "Dependency",
    "DependencyKind",
    "find_dependencies",
    "DependencyGraph",
    "build_multigraph",
    "Feature",
    "FeatureKind",
    "InstructionFeature",
    "DependencyFeature",
    "NumInstructionsFeature",
    "extract_features",
    "feature_present",
    "features_present",
]
