"""Explanation feature primitives (the paper's restricted feature set ``P̂``).

COMET composes explanations from three feature types (Section 5.1):

* :class:`InstructionFeature` — a specific instruction of the block,
* :class:`DependencyFeature` — a specific data-dependency hazard,
* :class:`NumInstructionsFeature` — the number of instructions ``η``.

Instruction and dependency features are *fine-grained*; the instruction count
is *coarse-grained*.  The utility study in Section 6.3 relies on this split.

Features have two roles:

1. during the anchor search they index what the perturbation algorithm must
   preserve (identified positionally against the original block), and
2. during coverage estimation they are checked for *presence* in arbitrary
   perturbed blocks via :func:`feature_present`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from repro.bb.block import BasicBlock
from repro.bb.dependencies import Dependency, DependencyKind
from repro.isa.formatter import format_instruction
from repro.isa.instructions import Instruction


class FeatureKind(str, Enum):
    """The three feature types of ``P̂``."""

    INSTRUCTION = "inst"
    DEPENDENCY = "dep"
    NUM_INSTRUCTIONS = "num_instrs"

    @property
    def is_fine_grained(self) -> bool:
        """Instruction and dependency features are fine-grained (Section 6.3)."""
        return self is not FeatureKind.NUM_INSTRUCTIONS


class Feature:
    """Base class for explanation features."""

    kind: FeatureKind

    def describe(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


@dataclass(frozen=True, repr=False)
class InstructionFeature(Feature):
    """A specific instruction of the original block.

    ``index`` is the position in the original block (used by the perturber to
    know which vertex to preserve); ``mnemonic`` and ``operand_text`` identify
    the instruction content (used for presence checks in perturbed blocks).
    """

    index: int
    mnemonic: str
    operand_text: Tuple[str, ...]

    @property
    def kind(self) -> FeatureKind:
        return FeatureKind.INSTRUCTION

    @classmethod
    def of(cls, index: int, instruction: Instruction) -> "InstructionFeature":
        from repro.isa.formatter import format_operand

        return cls(
            index=index,
            mnemonic=instruction.mnemonic,
            operand_text=tuple(format_operand(op) for op in instruction.operands),
        )

    def describe(self) -> str:
        operands = ", ".join(self.operand_text)
        text = f"{self.mnemonic} {operands}".strip()
        return f"inst{self.index + 1}: {text}"


@dataclass(frozen=True, repr=False)
class DependencyFeature(Feature):
    """A specific data-dependency hazard of the original block."""

    source: int
    destination: int
    dep_kind: DependencyKind
    location_space: str
    source_mnemonic: str
    destination_mnemonic: str

    @property
    def kind(self) -> FeatureKind:
        return FeatureKind.DEPENDENCY

    @classmethod
    def of(cls, block: BasicBlock, dependency: Dependency) -> "DependencyFeature":
        return cls(
            source=dependency.source,
            destination=dependency.destination,
            dep_kind=dependency.kind,
            location_space=dependency.location_space,
            source_mnemonic=block[dependency.source].mnemonic,
            destination_mnemonic=block[dependency.destination].mnemonic,
        )

    def describe(self) -> str:
        return (
            f"δ{self.dep_kind.value},{self.source + 1},{self.destination + 1} "
            f"({self.source_mnemonic}→{self.destination_mnemonic})"
        )


@dataclass(frozen=True, repr=False)
class NumInstructionsFeature(Feature):
    """The block's instruction count ``η``."""

    count: int

    @property
    def kind(self) -> FeatureKind:
        return FeatureKind.NUM_INSTRUCTIONS

    def describe(self) -> str:
        return f"η (num instructions) = {self.count}"


#: A set of features, as manipulated by the anchor search.
FeatureSet = FrozenSet[Feature]


def extract_features(block: BasicBlock) -> List[Feature]:
    """Extract the full candidate feature set ``P̂`` of ``block``.

    Ordered as: instruction features (by position), dependency features (by
    source/destination), then the instruction-count feature — matching
    Figure 1(iii) of the paper.
    """
    features: List[Feature] = []
    for index, instruction in enumerate(block):
        features.append(InstructionFeature.of(index, instruction))
    for dependency in block.dependencies:
        features.append(DependencyFeature.of(block, dependency))
    features.append(NumInstructionsFeature(block.num_instructions))
    return features


def feature_present(feature: Feature, block: BasicBlock) -> bool:
    """Whether ``feature`` is present in (possibly perturbed) ``block``.

    Presence semantics, used for coverage estimation (Eq. 6):

    * an instruction feature is present if some instruction of ``block`` has
      the same mnemonic and operands (position-independent),
    * a dependency feature is present if some hazard of ``block`` has the same
      kind, lives in the same location space and connects instructions with
      the same mnemonics,
    * the instruction-count feature is present iff the counts match.
    """
    if isinstance(feature, NumInstructionsFeature):
        return block.num_instructions == feature.count
    if isinstance(feature, InstructionFeature):
        for instruction in block:
            if instruction.mnemonic != feature.mnemonic:
                continue
            from repro.isa.formatter import format_operand

            operands = tuple(format_operand(op) for op in instruction.operands)
            if operands == feature.operand_text:
                return True
        return False
    if isinstance(feature, DependencyFeature):
        for dep in block.dependencies:
            if dep.kind is not feature.dep_kind:
                continue
            if dep.location_space != feature.location_space:
                continue
            if (
                block[dep.source].mnemonic == feature.source_mnemonic
                and block[dep.destination].mnemonic == feature.destination_mnemonic
            ):
                return True
        return False
    raise TypeError(f"unknown feature type {type(feature)!r}")


def features_present(features: Iterable[Feature], block: BasicBlock) -> bool:
    """Whether *all* ``features`` are present in ``block``."""
    return all(feature_present(f, block) for f in features)


def split_by_kind(features: Iterable[Feature]) -> dict:
    """Group features by :class:`FeatureKind` (used by the utility study)."""
    grouped: dict = {kind: [] for kind in FeatureKind}
    for feature in features:
        grouped[feature.kind].append(feature)
    return grouped


def feature_kinds_present(features: Iterable[Feature]) -> FrozenSet[FeatureKind]:
    """The set of feature kinds appearing in ``features``."""
    return frozenset(f.kind for f in features)
