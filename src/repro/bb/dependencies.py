"""Data-dependency analysis for basic blocks.

The paper's multigraph has one directed edge per data-dependency hazard
between an instruction pair, labelled with the hazard type (Appendix B):

* **RAW** (read-after-write, true dependency): a later instruction reads a
  location the earlier one wrote.
* **WAR** (write-after-read, anti dependency): a later instruction writes a
  location the earlier one read.
* **WAW** (write-after-write, output dependency): both write the same
  location.

Modelling choices (documented because they shape the feature space):

* Flags-register hazards are ignored — almost every ALU instruction writes
  flags, so including them would connect nearly every instruction pair and
  drown the meaningful dependencies (hardware renames flags anyway).
* Stack-pointer hazards from ``push``/``pop`` are ignored for the same reason
  (the stack engine renames ``rsp`` updates).
* Only the *nearest* hazard is reported: for RAW the reader depends on the
  last writer of the location; earlier writers are shadowed.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Sequence, Set, Tuple

from repro.isa.instructions import Instruction, Location


class DependencyKind(str, Enum):
    """Hazard types between an instruction pair."""

    RAW = "RAW"
    WAR = "WAR"
    WAW = "WAW"

    @property
    def is_true_dependency(self) -> bool:
        """Whether this hazard is a true (dataflow) dependency."""
        return self is DependencyKind.RAW


@dataclass(frozen=True)
class Dependency:
    """One data-dependency hazard between two instructions of a block.

    ``source`` and ``destination`` are instruction indices with
    ``source < destination`` (program order); ``location`` is the symbolic
    register root or memory address over which the hazard occurs.
    """

    source: int
    destination: int
    kind: DependencyKind
    location: Location

    def __post_init__(self) -> None:
        if self.source >= self.destination:
            raise ValueError(
                f"dependency source {self.source} must precede destination "
                f"{self.destination}"
            )

    @property
    def location_space(self) -> str:
        """``"reg"`` or ``"mem"`` — where the hazard lives."""
        return self.location[0]

    def label(self) -> str:
        """Human-readable label, e.g. ``RAW(1→2 over rcx)``."""
        loc = self.location[1]
        loc_text = loc if isinstance(loc, str) else "mem"
        return f"{self.kind.value}({self.source}→{self.destination} over {loc_text})"


#: Locations excluded from hazard detection (see module docstring).
_IGNORED_ROOTS = {"rflags", "rsp", "rip"}


def _tracked(location: Location) -> bool:
    space, payload = location
    if space == "flags":
        return False
    if space == "reg" and payload in _IGNORED_ROOTS:
        return False
    return True


def _tracked_accesses(
    instruction: Instruction,
) -> Tuple[Tuple[Location, ...], Tuple[Location, ...]]:
    """The instruction's hazard-tracked ``(reads, writes)``, memoised.

    Perturbed blocks share :class:`Instruction` instances heavily (opcode
    replacements and renames are cached objects), and both the dependency
    scan and the batched analytical model re-filter the same read/write sets
    thousands of times per explanation; caching the filtered tuples on the
    instance makes the filter a dict lookup after the first visit.
    """
    cached = instruction.__dict__.get("_tracked_accesses")
    if cached is None:
        reads = tuple(loc for loc in instruction.reads if _tracked(loc))
        writes = tuple(loc for loc in instruction.writes if _tracked(loc))
        cached = instruction.__dict__["_tracked_accesses"] = (reads, writes)
    return cached


def find_dependencies(instructions: Sequence[Instruction]) -> List[Dependency]:
    """All data-dependency hazards of a block, in program order.

    Multiple hazards (possibly of different kinds) may exist between the same
    instruction pair; each is reported separately, matching the multigraph
    construction of Section 5.1.
    """
    last_writer: Dict[Location, int] = {}
    readers_since_write: Dict[Location, Set[int]] = {}
    dependencies: List[Dependency] = []
    seen: Set[Tuple[int, int, DependencyKind, Location]] = set()

    def emit(src: int, dst: int, kind: DependencyKind, loc: Location) -> None:
        key = (src, dst, kind, loc)
        if src < dst and key not in seen:
            seen.add(key)
            dependencies.append(Dependency(src, dst, kind, loc))

    for index, instruction in enumerate(instructions):
        reads, writes = _tracked_accesses(instruction)

        for loc in reads:
            if loc in last_writer:
                emit(last_writer[loc], index, DependencyKind.RAW, loc)
        for loc in writes:
            if loc in last_writer:
                emit(last_writer[loc], index, DependencyKind.WAW, loc)
            for reader in readers_since_write.get(loc, ()):  # WAR hazards
                if reader != index:
                    emit(reader, index, DependencyKind.WAR, loc)

        for loc in reads:
            readers_since_write.setdefault(loc, set()).add(index)
        for loc in writes:
            last_writer[loc] = index
            readers_since_write[loc] = set()

    dependencies.sort(key=lambda d: (d.source, d.destination, d.kind.value, str(d.location)))
    return dependencies


def raw_dependency_pairs(instructions: Sequence[Instruction]) -> List[Tuple[int, int]]:
    """``(source, destination)`` pairs of RAW hazards, nearest-writer only.

    A lean subset of :func:`find_dependencies` for hot batched prediction
    paths: it reports exactly the instruction pairs that carry a RAW hazard
    (deduplicated across locations) without materialising
    :class:`Dependency` objects or scanning for WAR/WAW hazards.
    """
    last_writer: Dict[Location, int] = {}
    pairs: List[Tuple[int, int]] = []
    seen: Set[Tuple[int, int]] = set()
    last_writer_get = last_writer.get
    for index, instruction in enumerate(instructions):
        # Inlined _tracked_accesses memo: this scan runs once per unique
        # block in the batched model path, so even the per-instruction
        # function-call overhead of the helper was visible in profiles.
        accesses = instruction.__dict__.get("_tracked_accesses")
        if accesses is None:
            accesses = _tracked_accesses(instruction)
        reads, writes = accesses
        for loc in reads:
            source = last_writer_get(loc)
            if source is not None:
                pair = (source, index)
                if pair not in seen:
                    seen.add(pair)
                    pairs.append(pair)
        for loc in writes:
            last_writer[loc] = index
    return pairs


def dependencies_between(
    dependencies: Sequence[Dependency], source: int, destination: int
) -> List[Dependency]:
    """All hazards between one ordered instruction pair."""
    return [
        d
        for d in dependencies
        if d.source == source and d.destination == destination
    ]


def true_dependency_chains(
    instructions: Sequence[Instruction], dependencies: Sequence[Dependency]
) -> List[List[int]]:
    """Maximal RAW chains (used by tests and by the analytical case studies)."""
    raw_successors: Dict[int, List[int]] = {}
    has_predecessor: Set[int] = set()
    for dep in dependencies:
        if dep.kind is DependencyKind.RAW:
            raw_successors.setdefault(dep.source, []).append(dep.destination)
            has_predecessor.add(dep.destination)

    chains: List[List[int]] = []

    def walk(node: int, path: List[int]) -> None:
        successors = raw_successors.get(node, [])
        if not successors:
            if len(path) > 1:
                chains.append(list(path))
            return
        for nxt in successors:
            walk(nxt, path + [nxt])

    for start in range(len(instructions)):
        if start not in has_predecessor and start in raw_successors:
            walk(start, [start])
    return chains
