"""The dependency multigraph ``G`` of Section 5.1.

Vertices are the block's instructions (annotated with their position); edges
are data-dependency hazards, one edge per hazard, labelled with its kind.  The
graph is a thin wrapper over :class:`networkx.MultiDiGraph` so downstream code
(and users) can run standard graph algorithms on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from repro.bb.block import BasicBlock
from repro.bb.dependencies import Dependency, DependencyKind


def build_multigraph(block: BasicBlock) -> nx.MultiDiGraph:
    """Build the multigraph of ``block``.

    Node ``i`` carries attributes ``instruction`` (the :class:`Instruction`)
    and ``position`` (=`i`).  Each edge carries ``kind`` (a
    :class:`DependencyKind`), ``location`` and the originating
    :class:`Dependency` object.
    """
    graph = nx.MultiDiGraph()
    for index, instruction in enumerate(block):
        graph.add_node(index, instruction=instruction, position=index)
    for dep in block.dependencies:
        graph.add_edge(
            dep.source,
            dep.destination,
            kind=dep.kind,
            location=dep.location,
            dependency=dep,
        )
    return graph


@dataclass
class DependencyGraph:
    """The multigraph plus convenient accessors used by the perturber."""

    block: BasicBlock
    graph: nx.MultiDiGraph

    @classmethod
    def of(cls, block: BasicBlock) -> "DependencyGraph":
        """Build the dependency graph of ``block``."""
        return cls(block=block, graph=build_multigraph(block))

    @property
    def num_vertices(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    def dependencies(self) -> List[Dependency]:
        """All dependencies, in edge-insertion order."""
        return [data["dependency"] for _, _, data in self.graph.edges(data=True)]

    def dependencies_touching(self, vertex: int) -> List[Dependency]:
        """All dependencies with ``vertex`` as source or destination."""
        out = []
        for dep in self.dependencies():
            if dep.source == vertex or dep.destination == vertex:
                out.append(dep)
        return out

    def edges_by_kind(self) -> Dict[DependencyKind, List[Dependency]]:
        """Dependencies grouped by hazard kind."""
        grouped: Dict[DependencyKind, List[Dependency]] = {}
        for dep in self.dependencies():
            grouped.setdefault(dep.kind, []).append(dep)
        return grouped

    def shared_operand_edges(self) -> List[Tuple[Dependency, Dependency]]:
        """Pairs of dependencies that share a vertex *and* a location.

        Section 5.2 notes that such edge pairs cannot be perturbed completely
        independently (renaming the shared operand affects both); the
        perturber uses this accessor to group them.
        """
        deps = self.dependencies()
        pairs = []
        for i in range(len(deps)):
            for j in range(i + 1, len(deps)):
                a, b = deps[i], deps[j]
                share_vertex = {a.source, a.destination} & {b.source, b.destination}
                if share_vertex and a.location == b.location:
                    pairs.append((a, b))
        return pairs

    def critical_path_length(self, latency_of) -> float:
        """Longest RAW chain weighted by ``latency_of(instruction_index)``.

        Used by tests and the LLVM-MCA-style baseline as a latency bound.
        """
        raw_graph = nx.DiGraph()
        raw_graph.add_nodes_from(self.graph.nodes)
        for dep in self.dependencies():
            if dep.kind is DependencyKind.RAW:
                raw_graph.add_edge(dep.source, dep.destination)
        best = 0.0
        for node in nx.topological_sort(raw_graph):
            preds = list(raw_graph.predecessors(node))
            start = max((raw_graph.nodes[p]["finish"] for p in preds), default=0.0)
            finish = start + float(latency_of(node))
            raw_graph.nodes[node]["finish"] = finish
            best = max(best, finish)
        return best
