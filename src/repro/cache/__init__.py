"""Persistent tiered memoization of whole explanations.

An explanation is a pure function of *(block, model, uarch, config, seed)*;
this package turns that purity into an operable cache: a canonical
:func:`result_fingerprint` identity, and a :class:`ResultCache` that layers
an in-process LRU (tier 0) over an append-only, crash-tolerant on-disk log
(tier 1) shared safely between processes.  Sessions and the explanation
service wire it into ``explain``/``explain_many`` and the fused batching
tick; corrupt or torn stores are detected and refused with
:class:`~repro.utils.errors.CacheError`, never silently served.
"""

from repro.cache.fingerprint import CACHE_VERSION, cacheable_seed, result_fingerprint
from repro.cache.store import (
    RECORD_MAGIC,
    STORE_MAGIC,
    CacheStats,
    ResultCache,
    TierStats,
    merge_cache_stats,
    merge_tier_stats,
)
from repro.utils.errors import CacheError

__all__ = [
    "CACHE_VERSION",
    "CacheError",
    "CacheStats",
    "RECORD_MAGIC",
    "ResultCache",
    "STORE_MAGIC",
    "TierStats",
    "cacheable_seed",
    "merge_cache_stats",
    "merge_tier_stats",
    "result_fingerprint",
]
