"""Canonical result fingerprints: the identity of one memoizable explanation.

An explanation is a pure function of *(block, model, uarch, config, seed)* —
the block's content key pins the program, the model name and
microarchitecture pin the cost function, the explainer config pins every
hyperparameter the search reads, and the integer seed pins the random stream
(``np.random.default_rng(seed)``) that drives it.  Hash all five and you have
a key under which whole :class:`~repro.explain.explanation.Explanation`
objects can be stored and replayed bit-for-bit, across processes and across
restarts.

Two callers share this identity on purpose:

* ``ExplanationSession.explain(block, rng=seed)`` runs its search on
  ``default_rng(seed)``;
* each position of ``explain_many(blocks, rng=seed)`` runs on
  ``default_rng(child_seed)`` where the child seeds are spawned from the run
  seed (:func:`~repro.utils.rng.spawn_seeds`).

Both are "a search driven by ``default_rng(s)``", so a fleet position and a
single-block request that land on the same ``s`` genuinely compute the same
result and may share one cache entry.

The fields are hashed as a ``repr``-ed tuple of strings, not a joined
string, so a ``"|"`` inside a model name can never alias another request's
key.  ``CACHE_VERSION`` is baked into the digest: bump it when the meaning
of any field changes and every old entry misses instead of being misread.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Fingerprint schema version — part of every digest, so a format change
#: invalidates old stores wholesale instead of serving stale entries.
CACHE_VERSION = 1


def cacheable_seed(rng) -> bool:
    """Whether ``rng`` is an integer seed a result can be memoized under.

    Live ``Generator`` objects (and ``None``, which falls back to one) carry
    hidden stream state, so results computed from them are history-dependent
    and must never be cached.  ``bool`` is excluded explicitly: ``True`` is
    an ``int`` in Python but almost certainly a caller bug.
    """
    return isinstance(rng, (int, np.integer)) and not isinstance(rng, bool)


def result_fingerprint(*, block, model_name: str, uarch, config, seed: int) -> str:
    """The stable hex identity of one (block, model, uarch, config, seed).

    ``block`` is hashed via its content ``key()`` (instruction-level
    identity, whitespace/case normalised), ``config`` via its ``repr``
    (dataclass reprs enumerate every field, so any hyperparameter change
    produces a new key), and ``seed`` must be the integer that seeds the
    search's generator.
    """
    if not isinstance(seed, (int, np.integer)) or isinstance(seed, bool):
        raise TypeError(
            f"result_fingerprint requires an integer seed, got {type(seed).__name__}"
        )
    parts = (
        f"rc{CACHE_VERSION}",
        str(model_name),
        str(uarch),
        str(int(seed)),
        repr(config),
        repr(block.key()),
    )
    return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()
