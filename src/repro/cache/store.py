"""The tiered explanation result store: in-proc LRU over an append-only log.

Tier 0 is a plain ``OrderedDict`` LRU holding live
:class:`~repro.explain.explanation.Explanation` objects.  Tier 1 (optional)
is a length-prefixed append-only log on disk, in the mould of
:class:`~repro.runtime.checkpoint.CheckpointJournal`:

* **Write-through, fsynced appends.**  ``put`` pickles the explanation once,
  inserts it into tier 0 and appends one framed record to the log under an
  exclusive ``flock`` — a single ``write`` in ``O_APPEND`` mode, flushed and
  fsynced, so concurrent writer *processes* interleave whole records, never
  bytes.
* **Torn-tail and corrupt-entry tolerance.**  Opening a store scans the log
  and indexes every intact record; the first record that is short (a crash
  landed mid-append) or fails its CRC-32 marks the *frontier* and the scan
  stops there, exactly like journal replay stopping at the crash frontier.
  Lost entries cost a recompute, never a wrong answer.
* **Refusal over garbage.**  A file that does not start with the store magic
  is refused with :class:`~repro.utils.errors.CacheError` (it is not a cache,
  and appending to it would destroy someone's data).  A ``get`` re-validates
  its record — magic, fingerprint, CRC, payload type — and raises
  ``CacheError`` on any mismatch rather than returning bytes that merely
  unpickled.
* **Cross-process visibility.**  The index remembers the scan frontier; when
  a lookup misses but the file has grown (another process appended), the
  scan resumes from the frontier under a shared lock, so two service
  processes sharing one store see each other's entries without re-reading
  the whole log.

Eviction from tier 0 is *demotion*, not loss, whenever the entry was
written through to disk: the next hit re-reads and re-validates the record
and promotes it back into memory.  A memory-only cache (``path=None``)
simply forgets evicted entries.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.explain.explanation import Explanation
from repro.utils.errors import CacheError

try:  # pragma: no cover - fcntl exists on every POSIX platform we run on
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

#: File header: identifies a result-cache log (and its format version).
STORE_MAGIC = b"REPROCACHE1\n"
#: Per-record magic, the frame boundary the scanner resynchronises on.
RECORD_MAGIC = b"RC1\n"
#: Fingerprints are sha256 hex digests.
_FP_LEN = 64
#: ``payload_length`` and ``crc32`` ride as two big-endian uint32s.
_LEN_STRUCT = struct.Struct(">II")
_HEADER_LEN = len(RECORD_MAGIC) + _FP_LEN + _LEN_STRUCT.size


@dataclass(frozen=True)
class TierStats:
    """Counters for one cache tier (memory or disk)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt: int = 0
    entries: int = 0
    bytes: int = 0


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of a :class:`ResultCache` — one :class:`TierStats` per tier."""

    memory: TierStats = field(default_factory=TierStats)
    disk: Optional[TierStats] = None
    path: Optional[str] = None

    @property
    def hits(self) -> int:
        return self.memory.hits + (self.disk.hits if self.disk else 0)

    @property
    def lookups(self) -> int:
        """End-to-end lookups: every ``get`` counts exactly once."""
        return self.memory.hits + self.memory.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        disk = ""
        if self.disk is not None:
            disk = (
                f", disk {self.disk.entries} entries/{self.disk.bytes}B "
                f"({self.disk.hits} hits)"
            )
        return (
            f"result cache: {self.hits}/{self.lookups} hits "
            f"({self.hit_rate:.1%}), memory {self.memory.entries} entries"
            f"{disk}"
        )


class _Counters:
    """Mutable tier counters (snapshotted into frozen :class:`TierStats`)."""

    __slots__ = ("hits", "misses", "stores", "evictions", "corrupt")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.corrupt = 0


def _validate_fingerprint(fingerprint: str) -> bytes:
    try:
        raw = fingerprint.encode("ascii")
    except (UnicodeEncodeError, AttributeError) as error:
        raise CacheError(f"invalid cache fingerprint {fingerprint!r}") from error
    if len(raw) != _FP_LEN:
        raise CacheError(
            f"invalid cache fingerprint {fingerprint!r}: expected a "
            f"{_FP_LEN}-char sha256 hex digest"
        )
    return raw


class ResultCache:
    """Tiered memoization store for whole explanations.

    Parameters
    ----------
    path:
        Tier-1 log file, or ``None`` for a memory-only cache.  Parent
        directories are created; an existing file must be a result-cache log
        (wrong magic is refused with :class:`CacheError`).
    max_memory_entries:
        Tier-0 LRU capacity.  Evicted entries stay servable from disk.

    Thread-safe (one internal lock); cross-process safe for a shared ``path``
    via ``flock`` single-writer appends.  Use as a context manager or call
    :meth:`close` to release the file handle.
    """

    def __init__(
        self,
        path: Union[str, Path, None] = None,
        *,
        max_memory_entries: int = 4096,
    ) -> None:
        if max_memory_entries < 1:
            raise ValueError("max_memory_entries must be >= 1")
        self.path = Path(path) if path is not None else None
        self.max_memory_entries = max_memory_entries
        self._lock = threading.Lock()
        # fingerprint -> (explanation, pickled size)
        self._memory: "OrderedDict[str, Tuple[Explanation, int]]" = OrderedDict()
        self._memory_bytes = 0
        self._mem = _Counters()
        self._disk = _Counters()
        # fingerprint -> (record offset, total record length)
        self._index: Dict[str, Tuple[int, int]] = {}
        self._frontier = 0
        # Set when the scan hit a corrupt/torn record: rescans past it would
        # re-read the same broken bytes forever, so incremental rescan stops.
        self._frontier_blocked = False
        self._handle: Optional[io.BufferedRandom] = None
        self._closed = False
        if self.path is not None:
            self._open_store()

    # ------------------------------------------------------------------ disk

    def _open_store(self) -> None:
        assert self.path is not None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            # O_APPEND ("a+b"): every write lands at the true end of file no
            # matter who appended since we last looked — the property that
            # makes multi-process sharing safe under flock.
            self._handle = open(self.path, "a+b")  # noqa: SIM115 - long-lived
        except OSError as error:
            raise CacheError(f"cannot open result cache {self.path}: {error}") from error
        head: Optional[bytes] = None
        with self._file_lock(exclusive=True):
            self._handle.seek(0, os.SEEK_END)
            size = self._handle.tell()
            if size == 0:
                self._handle.write(STORE_MAGIC)
                self._handle.flush()
                os.fsync(self._handle.fileno())
            else:
                self._handle.seek(0)
                head = self._handle.read(len(STORE_MAGIC))
        if head is not None and head != STORE_MAGIC:
            self._handle.close()
            self._handle = None
            raise CacheError(
                f"{self.path} is not a result-cache store (bad magic); "
                f"refusing to read or append"
            )
        self._frontier = len(STORE_MAGIC)
        self._scan_forward()

    def _file_lock(self, *, exclusive: bool):
        """An advisory flock over the whole file (no-op without fcntl)."""
        handle = self._handle

        class _Lock:
            def __enter__(self_inner):
                if fcntl is not None and handle is not None:
                    fcntl.flock(
                        handle.fileno(),
                        fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH,
                    )
                return self_inner

            def __exit__(self_inner, *exc_info):
                if fcntl is not None and handle is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

        return _Lock()

    def _scan_forward(self) -> int:
        """Index records from the frontier to EOF; returns how many were added.

        Called on open and whenever a lookup misses but the file has grown
        (another process appended).  Stops — permanently — at the first torn
        or corrupt record: everything before it stays servable, everything
        after it is unreachable, and nothing broken is ever indexed.
        """
        if self._handle is None or self._frontier_blocked:
            return 0
        with self._file_lock(exclusive=False):
            return self._scan_unlocked()

    def _scan_unlocked(self) -> int:
        """The scan body, for callers already holding the flock.

        ``flock`` calls on an fd *convert* the lock they hold — taking the
        shared lock inside a section that holds the exclusive one would
        silently downgrade it, and the inner release would drop it entirely
        — so the append path, which rescans under its exclusive lock, must
        reach the scanner without touching the lock again.
        """
        if self._handle is None or self._frontier_blocked:
            return 0
        added = 0
        self._handle.seek(0, os.SEEK_END)
        end = self._handle.tell()
        offset = self._frontier
        while offset + _HEADER_LEN <= end:
            self._handle.seek(offset)
            header = self._handle.read(_HEADER_LEN)
            if len(header) < _HEADER_LEN or header[: len(RECORD_MAGIC)] != RECORD_MAGIC:
                self._frontier_blocked = True
                self._disk.corrupt += 1
                break
            fp_raw = header[len(RECORD_MAGIC) : len(RECORD_MAGIC) + _FP_LEN]
            payload_len, crc = _LEN_STRUCT.unpack(header[len(RECORD_MAGIC) + _FP_LEN :])
            total = _HEADER_LEN + payload_len
            if offset + total > end:
                # Torn tail: the crash landed mid-append.  Not corruption
                # — but nothing ordered after it can exist, so stop.
                self._frontier_blocked = True
                break
            payload = self._handle.read(payload_len)
            if len(payload) < payload_len or zlib.crc32(payload) != crc:
                self._frontier_blocked = True
                self._disk.corrupt += 1
                break
            try:
                fingerprint = fp_raw.decode("ascii")
            except UnicodeDecodeError:
                self._frontier_blocked = True
                self._disk.corrupt += 1
                break
            if fingerprint not in self._index:
                self._index[fingerprint] = (offset, total)
                added += 1
            offset += total
            self._frontier = offset
        return added

    def _read_record(self, fingerprint: str, offset: int, total: int) -> Explanation:
        """Read one indexed record back, re-validating everything.

        The index was built from bytes that checked out, but the file is
        shared and long-lived — re-validate at read time and *refuse* (typed
        error) rather than serve anything that no longer adds up.
        """
        assert self._handle is not None
        with self._file_lock(exclusive=False):
            self._handle.seek(offset)
            raw = self._handle.read(total)
        header, payload = raw[:_HEADER_LEN], raw[_HEADER_LEN:]
        corrupt = (
            len(raw) < total
            or header[: len(RECORD_MAGIC)] != RECORD_MAGIC
            or header[len(RECORD_MAGIC) : len(RECORD_MAGIC) + _FP_LEN]
            != fingerprint.encode("ascii")
            or zlib.crc32(payload) != _LEN_STRUCT.unpack(header[len(RECORD_MAGIC) + _FP_LEN :])[1]
        )
        explanation = None
        if not corrupt:
            try:
                explanation = pickle.loads(payload)
            except Exception:  # noqa: BLE001 - any unpickle failure is corruption
                corrupt = True
        if corrupt or not isinstance(explanation, Explanation):
            self._disk.corrupt += 1
            self._index.pop(fingerprint, None)
            raise CacheError(
                f"corrupt result-cache entry for {fingerprint[:12]}… in "
                f"{self.path}; refusing to serve it"
            )
        return explanation

    def _append_record(self, fingerprint: str, fp_raw: bytes, blob: bytes) -> None:
        assert self._handle is not None
        record = (
            RECORD_MAGIC
            + fp_raw
            + _LEN_STRUCT.pack(len(blob), zlib.crc32(blob))
            + blob
        )
        with self._file_lock(exclusive=True):
            # Another process may have stored this fingerprint while we
            # computed; indexing what they wrote beats appending a duplicate.
            # The unlocked scan variant is mandatory here: re-flocking the
            # fd we hold exclusively would downgrade and then drop the lock.
            self._scan_unlocked()
            if fingerprint in self._index:
                return
            self._handle.seek(0, os.SEEK_END)
            offset = self._handle.tell()
            try:
                self._handle.write(record)
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except OSError as error:
                raise CacheError(
                    f"cannot append to result cache {self.path}: {error}"
                ) from error
            self._index[fingerprint] = (offset, len(record))
            if self._frontier == offset and not self._frontier_blocked:
                self._frontier = offset + len(record)
            self._disk.stores += 1

    # ----------------------------------------------------------------- tiers

    def _memory_insert(self, fingerprint: str, explanation: Explanation, nbytes: int) -> None:
        existing = self._memory.pop(fingerprint, None)
        if existing is not None:
            self._memory_bytes -= existing[1]
        self._memory[fingerprint] = (explanation, nbytes)
        self._memory_bytes += nbytes
        while len(self._memory) > self.max_memory_entries:
            _, (_, dropped) = self._memory.popitem(last=False)
            self._memory_bytes -= dropped
            self._mem.evictions += 1

    # ------------------------------------------------------------------- api

    def get(self, fingerprint: str) -> Optional[Explanation]:
        """The stored explanation for ``fingerprint``, or ``None`` on miss.

        Tier 0 hit promotes the entry to most-recently-used; a tier-1 hit
        re-validates the record and promotes it into tier 0.  A record that
        fails validation raises :class:`CacheError` — never garbage.
        """
        _validate_fingerprint(fingerprint)
        with self._lock:
            self._check_open()
            entry = self._memory.get(fingerprint)
            if entry is not None:
                self._memory.move_to_end(fingerprint)
                self._mem.hits += 1
                return entry[0]
            self._mem.misses += 1
            if self._handle is None:
                return None
            location = self._index.get(fingerprint)
            if location is None:
                # The file may have grown under another process's appends.
                self._scan_forward()
                location = self._index.get(fingerprint)
            if location is None:
                self._disk.misses += 1
                return None
            explanation = self._read_record(fingerprint, *location)
            self._disk.hits += 1
            self._memory_insert(fingerprint, explanation, location[1] - _HEADER_LEN)
            return explanation

    def put(self, fingerprint: str, explanation: Explanation) -> None:
        """Store ``explanation`` under ``fingerprint`` (write-through).

        Idempotent: storing a fingerprint that is already on disk appends
        nothing (results are pure functions of their fingerprint, so the
        existing record is the same value).
        """
        fp_raw = _validate_fingerprint(fingerprint)
        if not isinstance(explanation, Explanation):
            raise CacheError(
                f"result cache stores Explanation objects, got "
                f"{type(explanation).__name__}"
            )
        blob = pickle.dumps(explanation)
        with self._lock:
            self._check_open()
            self._memory_insert(fingerprint, explanation, len(blob))
            self._mem.stores += 1
            if self._handle is not None and fingerprint not in self._index:
                self._append_record(fingerprint, fp_raw, blob)

    def refresh(self) -> int:
        """Index records appended by other processes; returns how many."""
        with self._lock:
            self._check_open()
            if self._handle is None:
                return 0
            return self._scan_forward()

    def stats(self) -> CacheStats:
        """A frozen snapshot of both tiers' counters."""
        with self._lock:
            memory = TierStats(
                hits=self._mem.hits,
                misses=self._mem.misses,
                stores=self._mem.stores,
                evictions=self._mem.evictions,
                corrupt=0,
                entries=len(self._memory),
                bytes=self._memory_bytes,
            )
            disk = None
            if self.path is not None:
                disk_bytes = 0
                if self._handle is not None:
                    try:
                        disk_bytes = os.fstat(self._handle.fileno()).st_size
                    except OSError:
                        disk_bytes = 0
                disk = TierStats(
                    hits=self._disk.hits,
                    misses=self._disk.misses,
                    stores=self._disk.stores,
                    evictions=0,  # append-only: disk entries are never evicted
                    corrupt=self._disk.corrupt,
                    entries=len(self._index),
                    bytes=disk_bytes,
                )
            return CacheStats(
                memory=memory,
                disk=disk,
                path=str(self.path) if self.path is not None else None,
            )

    def __len__(self) -> int:
        with self._lock:
            if self.path is None:
                return len(self._memory)
            return len(set(self._memory) | set(self._index))

    # ------------------------------------------------------------- lifecycle

    def _check_open(self) -> None:
        if self._closed:
            raise CacheError("this result cache has been closed")

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the tier-1 file handle (idempotent)."""
        with self._lock:
            if self._closed:
                return
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            self._memory.clear()
            self._memory_bytes = 0
            self._closed = True

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def merge_tier_stats(left: Optional[TierStats], right: Optional[TierStats]) -> Optional[TierStats]:
    """Sum two tier snapshots (for fleet-wide aggregation); ``None`` passes through."""
    if left is None:
        return right
    if right is None:
        return left
    return TierStats(
        hits=left.hits + right.hits,
        misses=left.misses + right.misses,
        stores=left.stores + right.stores,
        evictions=left.evictions + right.evictions,
        corrupt=left.corrupt + right.corrupt,
        entries=left.entries + right.entries,
        bytes=left.bytes + right.bytes,
    )


def merge_cache_stats(left: Optional[CacheStats], right: Optional[CacheStats]) -> Optional[CacheStats]:
    """Sum two cache snapshots across nodes (``None`` = that node has no cache)."""
    if left is None:
        return right
    if right is None:
        return left
    merged_memory = merge_tier_stats(left.memory, right.memory)
    assert merged_memory is not None
    path = left.path if left.path == right.path else None
    return CacheStats(
        memory=merged_memory,
        disk=merge_tier_stats(left.disk, right.disk),
        path=path,
    )


__all__ = [
    "CacheStats",
    "ResultCache",
    "TierStats",
    "merge_cache_stats",
    "merge_tier_stats",
]
