"""Candidate rewrites targeting one explanation feature.

Each rewrite is a concrete, valid block obtained by applying one of the three
moves the perturbation algorithm Γ already uses — register renaming, opcode
replacement, instruction deletion — but *directed* at a specific feature the
explanation named, rather than drawn at random.  The rewrites therefore live
in exactly the space the cost model was explained over.

Rewrites are cost-space proposals (Stoke-style): they are not guaranteed to
preserve the original block's semantics and must be verified by the caller if
semantic equivalence matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence

from repro.bb.block import BasicBlock
from repro.bb.features import (
    DependencyFeature,
    Feature,
    InstructionFeature,
    NumInstructionsFeature,
)
from repro.isa.instructions import Instruction
from repro.isa.validation import is_valid_instruction
from repro.perturb.replacements import (
    opcode_replacements,
    register_renaming_candidates,
    rename_register_in_instruction,
)
from repro.uarch.microarch import MicroArchitecture, get_microarch
from repro.uarch.tables import instruction_cost_for


class RewriteKind(str, Enum):
    """The move a rewrite applies."""

    RENAME_DEPENDENCY = "rename-dependency"
    REPLACE_OPCODE = "replace-opcode"
    DELETE_INSTRUCTION = "delete-instruction"


@dataclass(frozen=True)
class Rewrite:
    """One candidate rewrite of a block."""

    kind: RewriteKind
    description: str
    block: BasicBlock
    target_index: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rewrite {self.kind.value}: {self.description}>"


def _matching_dependency(block: BasicBlock, feature: DependencyFeature):
    for dependency in block.dependencies:
        if (
            dependency.source == feature.source
            and dependency.destination == feature.destination
            and dependency.kind is feature.dep_kind
        ):
            return dependency
    return None


def dependency_breaking_rewrites(
    block: BasicBlock,
    feature: DependencyFeature,
    *,
    max_candidates: int = 4,
) -> List[Rewrite]:
    """Rewrites that break the data dependency named by ``feature``.

    Register dependencies are broken by renaming, in the *destination*
    instruction, every reference to the register root carrying the hazard to
    a register unused elsewhere in the block (so no new hazard appears).
    Memory dependencies are not rewritten here — shifting a memory address is
    rarely a meaningful optimization target — and yield no candidates.
    """
    dependency = _matching_dependency(block, feature)
    if dependency is None:
        return []
    space, payload = dependency.location
    if space != "reg":
        return []
    root = str(payload)

    destination = block[dependency.destination]
    referenced = [
        operand.register
        for operand in destination.operands
        if hasattr(operand, "register") and operand.register.root == root
    ]
    # Memory operands referencing the root via base/index also carry it.
    if not referenced:
        for operand in destination.operands:
            for reg in operand.registers_read():
                if reg.root == root:
                    referenced.append(reg)
    if not referenced:
        return []

    candidates = register_renaming_candidates(
        referenced[0], forbidden_roots=[root], prefer_unused_in=block
    )
    rewrites: List[Rewrite] = []
    for replacement in candidates[:max_candidates]:
        new_instruction = rename_register_in_instruction(destination, root, replacement)
        if not is_valid_instruction(new_instruction):
            continue
        rewritten = block.replace_instruction(dependency.destination, new_instruction)
        rewrites.append(
            Rewrite(
                kind=RewriteKind.RENAME_DEPENDENCY,
                description=(
                    f"break {feature.dep_kind.value} dependency "
                    f"{dependency.source + 1}→{dependency.destination + 1} by renaming "
                    f"{root} to {replacement.root} in instruction {dependency.destination + 1}"
                ),
                block=rewritten,
                target_index=dependency.destination,
            )
        )
    return rewrites


def opcode_replacement_rewrites(
    block: BasicBlock,
    feature: InstructionFeature,
    microarch="hsw",
    *,
    only_cheaper: bool = True,
    max_candidates: int = 4,
) -> List[Rewrite]:
    """Rewrites replacing the opcode of the instruction named by ``feature``.

    Candidates are the opcodes that accept the instruction's operand list
    (the same pool Γ samples from), ordered by their reciprocal throughput on
    ``microarch``.  With ``only_cheaper`` (the default) only opcodes strictly
    cheaper than the original are proposed — the point of the rewrite is to
    remove the bottleneck, not to move sideways.
    """
    if not 0 <= feature.index < block.num_instructions:
        return []
    target: MicroArchitecture = get_microarch(microarch)
    original = block[feature.index]
    original_cost = instruction_cost_for(original, target).throughput

    scored = []
    for mnemonic in opcode_replacements(original):
        replaced = original.with_mnemonic(mnemonic)
        if not is_valid_instruction(replaced):
            continue
        cost = instruction_cost_for(replaced, target).throughput
        if only_cheaper and cost >= original_cost:
            continue
        scored.append((cost, mnemonic, replaced))
    scored.sort(key=lambda item: item[0])

    rewrites: List[Rewrite] = []
    for cost, mnemonic, replaced in scored[:max_candidates]:
        rewritten = block.replace_instruction(feature.index, replaced)
        rewrites.append(
            Rewrite(
                kind=RewriteKind.REPLACE_OPCODE,
                description=(
                    f"replace {original.mnemonic} with {mnemonic} at instruction "
                    f"{feature.index + 1} ({original_cost:.2f} → {cost:.2f} cycles rtpt)"
                ),
                block=rewritten,
                target_index=feature.index,
            )
        )
    return rewrites


def deletion_rewrites(block: BasicBlock, feature: InstructionFeature) -> List[Rewrite]:
    """The rewrite that deletes the instruction named by ``feature``.

    Deleting the last remaining instruction would produce an invalid block,
    so a single-instruction block yields no candidates.
    """
    if block.num_instructions <= 1:
        return []
    if not 0 <= feature.index < block.num_instructions:
        return []
    rewritten = block.delete_instruction(feature.index)
    return [
        Rewrite(
            kind=RewriteKind.DELETE_INSTRUCTION,
            description=f"delete instruction {feature.index + 1} ({feature.mnemonic})",
            block=rewritten,
            target_index=feature.index,
        )
    ]


def rewrites_for_feature(
    block: BasicBlock,
    feature: Feature,
    microarch="hsw",
    *,
    allow_deletion: bool = True,
    only_cheaper_opcodes: bool = True,
) -> List[Rewrite]:
    """All candidate rewrites targeting ``feature`` in ``block``.

    * a :class:`DependencyFeature` yields dependency-breaking renames,
    * an :class:`InstructionFeature` yields cheaper opcode replacements plus,
      when ``allow_deletion``, the deletion rewrite,
    * a :class:`NumInstructionsFeature` (the block is front-end bound) yields
      a deletion rewrite for every instruction — the only way to reduce the
      front-end bound is to issue fewer instructions.
    """
    if isinstance(feature, DependencyFeature):
        return dependency_breaking_rewrites(block, feature)
    if isinstance(feature, InstructionFeature):
        rewrites = opcode_replacement_rewrites(
            block, feature, microarch, only_cheaper=only_cheaper_opcodes
        )
        if allow_deletion:
            rewrites.extend(deletion_rewrites(block, feature))
        return rewrites
    if isinstance(feature, NumInstructionsFeature):
        if not allow_deletion:
            return []
        rewrites = []
        for index, instruction in enumerate(block):
            rewrites.extend(
                deletion_rewrites(block, InstructionFeature.of(index, instruction))
            )
        return rewrites
    raise TypeError(f"unsupported feature type {type(feature)!r}")
