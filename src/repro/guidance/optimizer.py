"""Stoke-style stochastic search guided by COMET explanations.

The optimizer minimises a cost model's predicted throughput for a block by
repeatedly proposing rewrites and accepting improvements (plus occasional
uphill moves, simulated-annealing style).  The *guided* variant spends its
proposal budget on the features COMET named in its explanation — the model
itself says those features are why the prediction is high — while the
*unguided* baseline proposes rewrites for uniformly random features.  The
``bench_ext_guidance`` benchmark and the ``optimize_block.py`` example show
the guided search reaching lower predicted cost in fewer model queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bb.block import BasicBlock
from repro.bb.features import Feature, extract_features
from repro.explain.config import ExplainerConfig
from repro.explain.explainer import CometExplainer
from repro.explain.explanation import Explanation
from repro.guidance.rewrites import Rewrite, rewrites_for_feature
from repro.models.base import CostModel
from repro.utils.rng import RandomSource, as_rng, choice


@dataclass(frozen=True)
class OptimizationConfig:
    """Knobs of the stochastic rewrite search.

    Attributes
    ----------
    steps:
        Number of proposal steps.
    guided:
        Whether proposals are biased towards the explanation's features
        (``True``) or drawn uniformly over all block features (``False``).
    guidance_weight:
        Probability mass assigned to explanation features when ``guided``;
        the remainder is spread over the other features so the search can
        still escape a misleading explanation.
    temperature:
        Metropolis temperature for accepting uphill moves; 0 disables them
        (pure hill climbing).
    allow_deletion:
        Whether instruction-deletion rewrites may be proposed.
    reexplain_every:
        Re-run COMET on the current best block every this many *accepted*
        moves (0 disables re-explanation).  Re-explaining keeps the guidance
        aligned with the rewritten block as it drifts away from the original.
    """

    steps: int = 40
    guided: bool = True
    guidance_weight: float = 0.8
    temperature: float = 0.0
    allow_deletion: bool = True
    reexplain_every: int = 0

    def __post_init__(self) -> None:
        if self.steps < 0:
            raise ValueError("steps must be non-negative")
        if not 0.0 <= self.guidance_weight <= 1.0:
            raise ValueError("guidance_weight must be in [0, 1]")
        if self.temperature < 0.0:
            raise ValueError("temperature must be non-negative")
        if self.reexplain_every < 0:
            raise ValueError("reexplain_every must be non-negative")


@dataclass(frozen=True)
class OptimizationStep:
    """Record of one proposal."""

    index: int
    description: str
    proposed_cost: float
    accepted: bool


@dataclass
class OptimizationResult:
    """Outcome of an optimization run."""

    original_block: BasicBlock
    best_block: BasicBlock
    original_cost: float
    best_cost: float
    steps: List[OptimizationStep] = field(default_factory=list)
    model_queries: int = 0
    explanations_used: int = 0

    @property
    def improvement(self) -> float:
        """Absolute predicted-cost reduction (cycles)."""
        return self.original_cost - self.best_cost

    @property
    def relative_improvement(self) -> float:
        """Predicted-cost reduction as a fraction of the original cost."""
        if self.original_cost <= 0.0:
            return 0.0
        return self.improvement / self.original_cost

    @property
    def accepted_steps(self) -> List[OptimizationStep]:
        return [step for step in self.steps if step.accepted]

    def describe(self) -> str:
        """Human-readable summary of the run."""
        lines = [
            f"Predicted cost: {self.original_cost:.2f} → {self.best_cost:.2f} cycles "
            f"({100.0 * self.relative_improvement:.1f}% lower)",
            f"Proposals: {len(self.steps)}, accepted: {len(self.accepted_steps)}, "
            f"model queries: {self.model_queries}",
            "Original block:",
        ]
        lines.extend(f"  {line}" for line in self.original_block.text.splitlines())
        lines.append("Optimized block:")
        lines.extend(f"  {line}" for line in self.best_block.text.splitlines())
        if self.accepted_steps:
            lines.append("Accepted rewrites:")
            lines.extend(f"  - {step.description}" for step in self.accepted_steps)
        return "\n".join(lines)


class ExplanationGuidedOptimizer:
    """Minimise a cost model's prediction by explanation-targeted rewrites."""

    def __init__(
        self,
        model: CostModel,
        config: Optional[OptimizationConfig] = None,
        *,
        explainer_config: Optional[ExplainerConfig] = None,
        rng: RandomSource = None,
    ) -> None:
        self.model = model
        self.config = config or OptimizationConfig()
        self.explainer_config = explainer_config or ExplainerConfig()
        self._rng = as_rng(rng)

    # --------------------------------------------------------------- search

    def optimize(
        self,
        block: BasicBlock,
        *,
        explanation: Optional[Explanation] = None,
        rng: RandomSource = None,
    ) -> OptimizationResult:
        """Run the rewrite search starting from ``block``.

        When ``explanation`` is omitted and the search is guided, a COMET
        explanation of the original block is computed first.
        """
        generator = as_rng(rng) if rng is not None else self._rng
        queries_before = self.model.query_count

        current = block
        current_cost = self.model.predict(block)
        best = current
        best_cost = current_cost

        explanations_used = 0
        guidance: Tuple[Feature, ...] = ()
        if self.config.guided:
            if explanation is None:
                explanation = CometExplainer(
                    self.model, self.explainer_config, rng=generator
                ).explain(block)
            guidance = explanation.features
            explanations_used += 1

        steps: List[OptimizationStep] = []
        accepted_since_explain = 0
        for index in range(self.config.steps):
            rewrite = self._propose(current, guidance, generator)
            if rewrite is None:
                continue
            proposed_cost = self.model.predict(rewrite.block)
            accepted = self._accept(current_cost, proposed_cost, generator)
            steps.append(
                OptimizationStep(
                    index=index,
                    description=rewrite.description,
                    proposed_cost=proposed_cost,
                    accepted=accepted,
                )
            )
            if not accepted:
                continue
            current = rewrite.block
            current_cost = proposed_cost
            accepted_since_explain += 1
            if proposed_cost < best_cost:
                best = rewrite.block
                best_cost = proposed_cost
            if (
                self.config.guided
                and self.config.reexplain_every > 0
                and accepted_since_explain >= self.config.reexplain_every
            ):
                guidance = CometExplainer(
                    self.model, self.explainer_config, rng=generator
                ).explain(current).features
                explanations_used += 1
                accepted_since_explain = 0

        return OptimizationResult(
            original_block=block,
            best_block=best,
            original_cost=self.model.predict(block),
            best_cost=best_cost,
            steps=steps,
            model_queries=self.model.query_count - queries_before,
            explanations_used=explanations_used,
        )

    # ------------------------------------------------------------ internals

    def _propose(
        self,
        block: BasicBlock,
        guidance: Sequence[Feature],
        rng: np.random.Generator,
    ) -> Optional[Rewrite]:
        feature = self._pick_feature(block, guidance, rng)
        if feature is None:
            return None
        candidates = rewrites_for_feature(
            block,
            feature,
            self.model.microarch,
            allow_deletion=self.config.allow_deletion,
        )
        if not candidates:
            return None
        return choice(rng, candidates)

    def _pick_feature(
        self,
        block: BasicBlock,
        guidance: Sequence[Feature],
        rng: np.random.Generator,
    ) -> Optional[Feature]:
        features = extract_features(block)
        if not features:
            return None
        if not self.config.guided or not guidance:
            return choice(rng, features)
        # Guidance features were extracted from the *original* block; rewrites
        # may have shifted indices, so match them by description where
        # possible and fall back to the current block's features otherwise.
        guided_pool = [f for f in features if self._matches_guidance(f, guidance)]
        if guided_pool and rng.random() < self.config.guidance_weight:
            return choice(rng, guided_pool)
        other = [f for f in features if f not in guided_pool] or features
        return choice(rng, other)

    @staticmethod
    def _matches_guidance(feature: Feature, guidance: Sequence[Feature]) -> bool:
        for guide in guidance:
            if feature == guide:
                return True
            if feature.kind is guide.kind and feature.kind.value == "inst":
                if getattr(feature, "mnemonic", None) == getattr(guide, "mnemonic", None):
                    return True
            if feature.kind is guide.kind and feature.kind.value == "dep":
                if (
                    getattr(feature, "dep_kind", None) == getattr(guide, "dep_kind", None)
                    and getattr(feature, "source_mnemonic", None)
                    == getattr(guide, "source_mnemonic", None)
                    and getattr(feature, "destination_mnemonic", None)
                    == getattr(guide, "destination_mnemonic", None)
                ):
                    return True
            if feature.kind is guide.kind and feature.kind.value == "num_instrs":
                return True
        return False

    def _accept(
        self, current_cost: float, proposed_cost: float, rng: np.random.Generator
    ) -> bool:
        if proposed_cost <= current_cost:
            return True
        if self.config.temperature <= 0.0:
            return False
        delta = proposed_cost - current_cost
        return bool(rng.random() < float(np.exp(-delta / self.config.temperature)))


def optimize_block(
    model: CostModel,
    block: BasicBlock,
    *,
    guided: bool = True,
    steps: int = 40,
    rng: RandomSource = 0,
    explainer_config: Optional[ExplainerConfig] = None,
) -> OptimizationResult:
    """One-call convenience wrapper around :class:`ExplanationGuidedOptimizer`."""
    config = OptimizationConfig(steps=steps, guided=guided)
    optimizer = ExplanationGuidedOptimizer(
        model, config, explainer_config=explainer_config, rng=rng
    )
    return optimizer.optimize(block)
