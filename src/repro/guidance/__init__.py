"""Explanation-guided optimization guidance (paper Section 7).

The paper's discussion proposes that "COMET can be augmented to existing cost
models to guide compiler optimizations with information on what parts of the
basic block need to be optimized for better performance".  This subpackage
implements that workflow:

* :func:`diagnose` turns a COMET explanation (plus, when the model exposes
  one, the pipeline simulator's bottleneck analysis) into a
  :class:`BottleneckReport` naming the block features that limit performance,
* :mod:`repro.guidance.rewrites` proposes candidate rewrites that target a
  specific explanation feature (break a data dependency by register renaming,
  replace an expensive opcode with a cheaper one accepting the same operands,
  delete an instruction),
* :class:`ExplanationGuidedOptimizer` runs a Stoke-style stochastic search
  over those rewrites, biased towards the features COMET identified, and
  minimises the *cost model's* predicted throughput.

The rewrites explore the cost model's input space the same way the
perturbation algorithm Γ does; they deliberately do **not** claim to preserve
program semantics (that verification burden belongs to the superoptimizer
harness, exactly as in Stoke).  The value demonstrated here is that the
explanation tells the search *where* to spend its proposals.
"""

from repro.guidance.bottlenecks import BottleneckReport, diagnose
from repro.guidance.rewrites import (
    Rewrite,
    RewriteKind,
    dependency_breaking_rewrites,
    deletion_rewrites,
    opcode_replacement_rewrites,
    rewrites_for_feature,
)
from repro.guidance.optimizer import (
    ExplanationGuidedOptimizer,
    OptimizationConfig,
    OptimizationResult,
    OptimizationStep,
    optimize_block,
)

__all__ = [
    "BottleneckReport",
    "diagnose",
    "Rewrite",
    "RewriteKind",
    "dependency_breaking_rewrites",
    "deletion_rewrites",
    "opcode_replacement_rewrites",
    "rewrites_for_feature",
    "ExplanationGuidedOptimizer",
    "OptimizationConfig",
    "OptimizationResult",
    "OptimizationStep",
    "optimize_block",
]
