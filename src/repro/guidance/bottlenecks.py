"""Turning explanations into actionable bottleneck reports.

A COMET explanation names the features of a block whose presence keeps the
cost model's prediction where it is.  For a performance engineer that is a
bottleneck report: the instructions and data dependencies worth optimizing
first.  When the cost model additionally exposes a pipeline analysis (the
uiCA stand-in does, mirroring uiCA's own bottleneck output described in
Appendix H.3 of the paper), the report cross-references the simulator's view
so the two sources of evidence can be compared side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bb.block import BasicBlock
from repro.bb.features import (
    DependencyFeature,
    Feature,
    FeatureKind,
    InstructionFeature,
    NumInstructionsFeature,
)
from repro.explain.config import ExplainerConfig
from repro.explain.explainer import CometExplainer
from repro.explain.explanation import Explanation
from repro.models.base import CostModel
from repro.uarch.tables import instruction_cost_for
from repro.utils.rng import RandomSource


@dataclass(frozen=True)
class BottleneckReport:
    """What limits a block's performance, according to a cost model.

    Attributes
    ----------
    block:
        The diagnosed block.
    model_name:
        Name of the cost model that was explained.
    prediction:
        The model's throughput prediction for the block, in cycles.
    explanation:
        The COMET explanation the report is derived from.
    instruction_indices:
        Zero-based indices of instructions named by the explanation.
    dependency_pairs:
        ``(source, destination, kind)`` triples for dependencies named by the
        explanation (zero-based instruction indices).
    frontend_bound:
        Whether the explanation contains the instruction-count feature η —
        i.e. the model treats the block as front-end (issue-width) bound.
    simulator_bottleneck:
        The pipeline simulator's bottleneck label (``frontend``/``ports``/
        ``dependencies``) when the model exposes an ``analyze`` method,
        otherwise ``None``.
    port_pressure:
        Per-port pressure from the simulator analysis, when available.
    """

    block: BasicBlock
    model_name: str
    prediction: float
    explanation: Explanation
    instruction_indices: Tuple[int, ...]
    dependency_pairs: Tuple[Tuple[int, int, str], ...]
    frontend_bound: bool
    simulator_bottleneck: Optional[str] = None
    port_pressure: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------ inspection

    @property
    def has_fine_grained_target(self) -> bool:
        """Whether the report names a specific instruction or dependency."""
        return bool(self.instruction_indices) or bool(self.dependency_pairs)

    @property
    def targeted_features(self) -> Tuple[Feature, ...]:
        """The explanation features the optimizer should target."""
        return self.explanation.features

    def hottest_instruction(self) -> Optional[int]:
        """Index of the most expensive instruction named by the explanation.

        Falls back to the most expensive instruction of the whole block when
        the explanation names no instruction (e.g. a purely η-based
        explanation still needs a starting point for optimization).
        """
        candidates = (
            list(self.instruction_indices)
            if self.instruction_indices
            else list(range(self.block.num_instructions))
        )
        if not candidates:
            return None
        microarch = self.explanation_model_microarch()

        def cost(index: int) -> float:
            return instruction_cost_for(self.block[index], microarch).throughput

        return max(candidates, key=cost)

    def explanation_model_microarch(self):
        """Micro-architecture of the explained model (defaults to Haswell)."""
        from repro.uarch.microarch import get_microarch

        name = self.model_name
        for short in ("hsw", "skl"):
            if name.endswith(short):
                return get_microarch(short)
        return get_microarch("hsw")

    # ------------------------------------------------------------- rendering

    def describe(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"Bottleneck report for {self.model_name} "
            f"(prediction: {self.prediction:.2f} cycles)",
            "Block:",
        ]
        for index, line in enumerate(self.block.text.splitlines()):
            marker = "=>" if index in self.instruction_indices else "  "
            lines.append(f"  {marker} {index + 1}: {line}")
        if self.dependency_pairs:
            lines.append("Dependencies named by the explanation:")
            for source, destination, kind in self.dependency_pairs:
                lines.append(f"  - {kind} between {source + 1} and {destination + 1}")
        if self.frontend_bound:
            lines.append(
                "The explanation contains the instruction-count feature: the model "
                "treats this block as front-end bound."
            )
        if self.simulator_bottleneck is not None:
            lines.append(f"Pipeline simulator bottleneck: {self.simulator_bottleneck}")
        if self.port_pressure:
            pressure = ", ".join(
                f"{port}: {value:.2f}" for port, value in sorted(self.port_pressure.items())
            )
            lines.append(f"Port pressure: {pressure}")
        return "\n".join(lines)


def _explanation_targets(
    explanation: Explanation,
) -> Tuple[Tuple[int, ...], Tuple[Tuple[int, int, str], ...], bool]:
    instruction_indices: List[int] = []
    dependency_pairs: List[Tuple[int, int, str]] = []
    frontend_bound = False
    for feature in explanation.features:
        if isinstance(feature, InstructionFeature):
            instruction_indices.append(feature.index)
        elif isinstance(feature, DependencyFeature):
            dependency_pairs.append(
                (feature.source, feature.destination, feature.dep_kind.value)
            )
        elif isinstance(feature, NumInstructionsFeature):
            frontend_bound = True
    return tuple(sorted(set(instruction_indices))), tuple(dependency_pairs), frontend_bound


def diagnose(
    block: BasicBlock,
    model: CostModel,
    *,
    explanation: Optional[Explanation] = None,
    config: Optional[ExplainerConfig] = None,
    rng: RandomSource = None,
) -> BottleneckReport:
    """Diagnose ``block`` under ``model``.

    When ``explanation`` is not supplied, a fresh COMET explanation is
    computed with ``config`` (paper defaults when omitted).  When the model —
    or the model it wraps — exposes an ``analyze(block)`` method returning a
    :class:`~repro.models.pipeline.SimulationResult`, the simulator's
    bottleneck label and port pressure are included in the report.
    """
    if explanation is None:
        explainer = CometExplainer(model, config, rng=rng)
        explanation = explainer.explain(block)

    instruction_indices, dependency_pairs, frontend_bound = _explanation_targets(
        explanation
    )

    simulator_bottleneck: Optional[str] = None
    port_pressure: Dict[str, float] = {}
    analyze = getattr(model, "analyze", None)
    if analyze is None:
        inner = getattr(model, "inner", None)
        analyze = getattr(inner, "analyze", None)
    if callable(analyze):
        result = analyze(block)
        simulator_bottleneck = result.bottleneck
        port_pressure = dict(result.port_pressure)

    return BottleneckReport(
        block=block,
        model_name=model.name,
        prediction=explanation.prediction,
        explanation=explanation,
        instruction_indices=instruction_indices,
        dependency_pairs=dependency_pairs,
        frontend_bound=frontend_bound,
        simulator_bottleneck=simulator_bottleneck,
        port_pressure=port_pressure,
    )
