"""Anchors-style beam search over candidate feature sets (Section 5.2).

Starting from the empty set, candidate explanations are grown one feature at
a time.  At each level the KL-LUCB estimator identifies the most precise
candidates with as few cost-model queries as possible; the survivors are
checked against the precision threshold, and the search stops at the first
level where a candidate clears it (adding features can only shrink coverage
— Theorem 1 — so the earliest valid anchor has the best coverage).  Among the
valid candidates of that level the one with maximum coverage is returned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.bb.block import BasicBlock
from repro.bb.features import Feature, extract_features
from repro.explain.config import ExplainerConfig
from repro.explain.coverage import CoverageEstimator, PopulationRecord
from repro.explain.precision import PrecisionEstimator
from repro.models.base import CostModel
from repro.perturb.batch import PerturbationBatch, encoded_enabled
from repro.perturb.sampler import PerturbationSampler
from repro.utils.cancellation import CancelToken
from repro.utils.rng import RandomSource


@dataclass(frozen=True)
class AnchorCandidate:
    """One evaluated candidate feature set."""

    features: Tuple[Feature, ...]
    precision: float
    precision_samples: int
    coverage: float
    meets_threshold: bool

    @property
    def size(self) -> int:
        return len(self.features)


class AnchorSearch:
    """Beam search bound to one (cost model, block) pair."""

    def __init__(
        self,
        model: CostModel,
        block: BasicBlock,
        config: Optional[ExplainerConfig] = None,
        rng: RandomSource = None,
        *,
        coverage_record: Optional[PopulationRecord] = None,
        cancel: Optional[CancelToken] = None,
    ) -> None:
        self.model = model
        self.block = block
        self.config = config or ExplainerConfig()
        # Checked cooperatively between KL-LUCB rounds and beam levels; a
        # token that never fires leaves the random stream untouched.
        self.cancel = cancel
        self.sampler = PerturbationSampler(block, self.config.perturbation, rng)
        # An injected record shares one background population across repeated
        # searches over the same block (see ExplanationSession); without one
        # the search draws a private population, as the paper's setup does.
        self.coverage_estimator = CoverageEstimator(
            self.sampler, self.config.coverage_samples, record=coverage_record
        )
        self.original_prediction = model.predict(block)
        self.tolerance = self.config.tolerance_for(self.original_prediction)
        self.candidate_features: List[Feature] = extract_features(block)
        self.evaluated: List[AnchorCandidate] = []

    # ------------------------------------------------------------- sampling

    def _make_estimator(
        self, candidates: Sequence[Tuple[Feature, ...]]
    ) -> PrecisionEstimator:
        """Externally-served estimator over ``candidates``.

        The estimator only tracks arm statistics and round structure; its
        draw requests are served by :meth:`_serve_requests` (batched or
        sequential per config) through the round-generator protocol.
        """
        config = self.config
        return PrecisionEstimator(
            num_arms=len(candidates),
            confidence_delta=config.confidence_delta,
            batch_size=config.batch_size,
            min_samples=config.min_precision_samples,
            max_samples=config.max_precision_samples,
            cancel=self.cancel,
        )

    def _serve_requests(
        self, requests: Sequence[Tuple[int, int]], candidates: Sequence[Tuple[Feature, ...]]
    ):
        """Serve one refinement round of ``(arm, count)`` draw requests.

        Sub-generator of :meth:`search_rounds`.  Perturbations are drawn per
        request in request order, so the random stream is consumed exactly the
        same way in both modes.  In batched mode the round's blocks are yielded
        outward — the driver answers with one prediction array, typically from
        a single ``predict_batch`` call (possibly fused with other requests'
        rounds) — and the tolerance-ball comparison is vectorized.  In
        sequential mode (``config.batch_queries = False``) each perturbed
        block is queried through ``model.predict`` on its own, and nothing is
        yielded.
        """
        if not self.config.batch_queries:
            outcome_batches: List[List[bool]] = []
            for arm, count in requests:
                perturbed = self.sampler.sample(candidates[arm], count)
                outcomes = []
                for candidate in perturbed:
                    prediction = self.model.predict(candidate)
                    outcomes.append(
                        abs(prediction - self.original_prediction) <= self.tolerance
                    )
                outcome_batches.append(outcomes)
            return outcome_batches

        if encoded_enabled():
            # Encoded path: the same draws in the same request order (the
            # sampler consumes an identical random stream either way), but
            # rows stay in deferred form; block construction happens only if
            # the serving model lacks a row kernel.
            segment_sizes: List[int] = []
            rows: List[object] = []
            for arm, count in requests:
                batch = self.sampler.sample_encoded(candidates[arm], count)
                segment_sizes.append(len(batch))
                rows.extend(batch.rows)
            if not rows:
                return [np.zeros(0, dtype=bool) for _ in requests]
            predictions = yield PerturbationBatch(rows)
        else:
            segment_sizes = []
            blocks: List[BasicBlock] = []
            for arm, count in requests:
                perturbed = self.sampler.sample(candidates[arm], count)
                segment_sizes.append(len(perturbed))
                blocks.extend(perturbed)
            if not blocks:
                return [np.zeros(0, dtype=bool) for _ in requests]
            predictions = yield blocks
        outcomes = (
            np.abs(np.asarray(predictions) - self.original_prediction) <= self.tolerance
        )
        # Slice per-request segments by cumulative index rather than a
        # Python offset walk; np.split returns zero-copy views of the
        # round's outcome vector.
        boundaries = np.cumsum(segment_sizes[:-1])
        return np.split(outcomes, boundaries)

    def _pump(self, estimator_rounds, candidates: Sequence[Tuple[Feature, ...]]):
        """Drive an estimator round generator, serving each round it requests.

        Sub-generator: block batches needed by the rounds propagate outward
        through ``yield`` (see :meth:`_serve_requests`) and the estimator
        generator's final value is returned.
        """
        payload = None
        while True:
            try:
                requests = estimator_rounds.send(payload)
            except StopIteration as stop:
                return stop.value
            payload = yield from self._serve_requests(requests, candidates)

    def _evaluate(
        self,
        estimator: PrecisionEstimator,
        arm: int,
        features: Tuple[Feature, ...],
        candidates: Sequence[Tuple[Feature, ...]],
    ):
        """Certify one candidate (sub-generator; see :meth:`search_rounds`)."""
        meets, stats = yield from self._pump(
            estimator.certify_threshold_rounds(arm, self.config.precision_threshold),
            candidates,
        )
        candidate = AnchorCandidate(
            features=features,
            precision=stats.mean,
            precision_samples=stats.samples,
            coverage=self.coverage_estimator.coverage(features),
            meets_threshold=meets,
        )
        self.evaluated.append(candidate)
        return candidate

    # --------------------------------------------------------------- search

    def search(self) -> AnchorCandidate:
        """Run the beam search and return the selected anchor.

        If no candidate clears the precision threshold within
        ``max_anchor_size`` features, the most precise candidate found is
        returned with ``meets_threshold=False`` (callers can inspect the flag).
        """
        generator = self.search_rounds()
        payload = None
        while True:
            try:
                blocks = generator.send(payload)
            except StopIteration as stop:
                return stop.value
            payload = np.asarray(self.model.predict_batch(blocks))

    def search_rounds(self):
        """Generator form of :meth:`search`, resumable at round granularity.

        Yields the perturbed-block batch each KL-LUCB round needs and expects
        the corresponding prediction array back via ``send``; the selected
        :class:`AnchorCandidate` arrives through ``StopIteration.value``.
        :meth:`search` is a driver that answers every round with its own
        ``predict_batch`` call; the service layer's continuous batcher instead
        interleaves the rounds of many concurrent searches and answers them
        from fused cost-model queries.  In sequential mode
        (``config.batch_queries = False``) queries are issued inline and the
        generator finishes without yielding at all.
        """
        config = self.config

        # The empty anchor: if the model's prediction is already stable under
        # arbitrary perturbations, no feature is needed to explain it.
        empty_candidates: List[Tuple[Feature, ...]] = [()]
        empty_estimator = self._make_estimator(empty_candidates)
        empty_candidate = yield from self._evaluate(
            empty_estimator, 0, (), empty_candidates
        )
        if empty_candidate.meets_threshold:
            return empty_candidate

        beams: List[Tuple[Feature, ...]] = [()]
        best_fallback = empty_candidate
        seen: set = set()

        for _ in range(config.max_anchor_size):
            if self.cancel is not None:
                self.cancel.check()
            candidates: List[Tuple[Feature, ...]] = []
            for beam in beams:
                beam_set = frozenset(beam)
                for feature in self.candidate_features:
                    if feature in beam_set:
                        continue
                    extended = beam + (feature,)
                    key = frozenset(extended)
                    if key in seen:
                        continue
                    seen.add(key)
                    candidates.append(extended)
            if not candidates:
                break

            estimator = self._make_estimator(candidates)
            top_arms = yield from self._pump(
                estimator.select_top_rounds(
                    config.beam_width, tolerance=config.lucb_tolerance
                ),
                candidates,
            )

            valid: List[AnchorCandidate] = []
            level_candidates: List[AnchorCandidate] = []
            for arm in top_arms:
                candidate = yield from self._evaluate(
                    estimator, arm, candidates[arm], candidates
                )
                level_candidates.append(candidate)
                if candidate.meets_threshold:
                    valid.append(candidate)
                if candidate.precision > best_fallback.precision:
                    best_fallback = candidate

            if valid:
                return max(valid, key=lambda c: (c.coverage, c.precision))
            beams = [candidate.features for candidate in level_candidates]

        return best_fallback
