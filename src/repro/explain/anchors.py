"""Anchors-style beam search over candidate feature sets (Section 5.2).

Starting from the empty set, candidate explanations are grown one feature at
a time.  At each level the KL-LUCB estimator identifies the most precise
candidates with as few cost-model queries as possible; the survivors are
checked against the precision threshold, and the search stops at the first
level where a candidate clears it (adding features can only shrink coverage
— Theorem 1 — so the earliest valid anchor has the best coverage).  Among the
valid candidates of that level the one with maximum coverage is returned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.bb.block import BasicBlock
from repro.bb.features import Feature, extract_features
from repro.explain.config import ExplainerConfig
from repro.explain.coverage import CoverageEstimator, PopulationRecord
from repro.explain.precision import PrecisionEstimator
from repro.models.base import CostModel
from repro.perturb.sampler import PerturbationSampler
from repro.utils.cancellation import CancelToken
from repro.utils.rng import RandomSource


@dataclass(frozen=True)
class AnchorCandidate:
    """One evaluated candidate feature set."""

    features: Tuple[Feature, ...]
    precision: float
    precision_samples: int
    coverage: float
    meets_threshold: bool

    @property
    def size(self) -> int:
        return len(self.features)


class AnchorSearch:
    """Beam search bound to one (cost model, block) pair."""

    def __init__(
        self,
        model: CostModel,
        block: BasicBlock,
        config: Optional[ExplainerConfig] = None,
        rng: RandomSource = None,
        *,
        coverage_record: Optional[PopulationRecord] = None,
        cancel: Optional[CancelToken] = None,
    ) -> None:
        self.model = model
        self.block = block
        self.config = config or ExplainerConfig()
        # Checked cooperatively between KL-LUCB rounds and beam levels; a
        # token that never fires leaves the random stream untouched.
        self.cancel = cancel
        self.sampler = PerturbationSampler(block, self.config.perturbation, rng)
        # An injected record shares one background population across repeated
        # searches over the same block (see ExplanationSession); without one
        # the search draws a private population, as the paper's setup does.
        self.coverage_estimator = CoverageEstimator(
            self.sampler, self.config.coverage_samples, record=coverage_record
        )
        self.original_prediction = model.predict(block)
        self.tolerance = self.config.tolerance_for(self.original_prediction)
        self.candidate_features: List[Feature] = extract_features(block)
        self.evaluated: List[AnchorCandidate] = []

    # ------------------------------------------------------------- sampling

    def _outcome_sampler(self, features: Tuple[Feature, ...]) -> Callable[[int], List[bool]]:
        """Bernoulli sampler for one candidate: perturb, query, compare.

        The legacy sequential path (``config.batch_queries = False``): each
        perturbed block is queried through ``model.predict`` on its own.
        """

        def draw(count: int) -> List[bool]:
            perturbed = self.sampler.sample(features, count)
            outcomes = []
            for candidate in perturbed:
                prediction = self.model.predict(candidate)
                outcomes.append(
                    abs(prediction - self.original_prediction) <= self.tolerance
                )
            return outcomes

        return draw

    def _outcome_batch_sampler(
        self, candidates: Sequence[Tuple[Feature, ...]]
    ) -> Callable[[Sequence[Tuple[int, int]]], List[np.ndarray]]:
        """Round-level Bernoulli sampler over a whole candidate level.

        All perturbed blocks of one refinement round — across every arm the
        estimator refines — flow through a single ``predict_batch`` call, and
        the tolerance-ball comparison is vectorized with numpy.  Perturbations
        are drawn per request in request order, so the random stream is
        consumed exactly as the sequential path would.
        """

        def draw_many(requests: Sequence[Tuple[int, int]]) -> List[np.ndarray]:
            segment_sizes: List[int] = []
            blocks: List[BasicBlock] = []
            for arm, count in requests:
                perturbed = self.sampler.sample(candidates[arm], count)
                segment_sizes.append(len(perturbed))
                blocks.extend(perturbed)
            if not blocks:
                return [np.zeros(0, dtype=bool) for _ in requests]
            predictions = np.asarray(self.model.predict_batch(blocks))
            outcomes = (
                np.abs(predictions - self.original_prediction) <= self.tolerance
            )
            segments: List[np.ndarray] = []
            offset = 0
            for size in segment_sizes:
                segments.append(outcomes[offset : offset + size])
                offset += size
            return segments

        return draw_many

    def _make_estimator(
        self, candidates: Sequence[Tuple[Feature, ...]]
    ) -> PrecisionEstimator:
        """Estimator over ``candidates``, batched or sequential per config."""
        config = self.config
        common = dict(
            confidence_delta=config.confidence_delta,
            batch_size=config.batch_size,
            min_samples=config.min_precision_samples,
            max_samples=config.max_precision_samples,
            cancel=self.cancel,
        )
        if config.batch_queries:
            return PrecisionEstimator(
                batch_sampler=self._outcome_batch_sampler(candidates),
                num_arms=len(candidates),
                **common,
            )
        return PrecisionEstimator(
            [self._outcome_sampler(candidate) for candidate in candidates], **common
        )

    def _evaluate(
        self, estimator: PrecisionEstimator, arm: int, features: Tuple[Feature, ...]
    ) -> AnchorCandidate:
        meets, stats = estimator.certify_threshold(
            arm, self.config.precision_threshold
        )
        candidate = AnchorCandidate(
            features=features,
            precision=stats.mean,
            precision_samples=stats.samples,
            coverage=self.coverage_estimator.coverage(features),
            meets_threshold=meets,
        )
        self.evaluated.append(candidate)
        return candidate

    # --------------------------------------------------------------- search

    def search(self) -> AnchorCandidate:
        """Run the beam search and return the selected anchor.

        If no candidate clears the precision threshold within
        ``max_anchor_size`` features, the most precise candidate found is
        returned with ``meets_threshold=False`` (callers can inspect the flag).
        """
        config = self.config

        # The empty anchor: if the model's prediction is already stable under
        # arbitrary perturbations, no feature is needed to explain it.
        empty_estimator = self._make_estimator([()])
        empty_candidate = self._evaluate(empty_estimator, 0, ())
        if empty_candidate.meets_threshold:
            return empty_candidate

        beams: List[Tuple[Feature, ...]] = [()]
        best_fallback = empty_candidate
        seen: set = set()

        for _ in range(config.max_anchor_size):
            if self.cancel is not None:
                self.cancel.check()
            candidates: List[Tuple[Feature, ...]] = []
            for beam in beams:
                beam_set = frozenset(beam)
                for feature in self.candidate_features:
                    if feature in beam_set:
                        continue
                    extended = beam + (feature,)
                    key = frozenset(extended)
                    if key in seen:
                        continue
                    seen.add(key)
                    candidates.append(extended)
            if not candidates:
                break

            estimator = self._make_estimator(candidates)
            top_arms = estimator.select_top(
                config.beam_width, tolerance=config.lucb_tolerance
            )

            valid: List[AnchorCandidate] = []
            level_candidates: List[AnchorCandidate] = []
            for arm in top_arms:
                candidate = self._evaluate(estimator, arm, candidates[arm])
                level_candidates.append(candidate)
                if candidate.meets_threshold:
                    valid.append(candidate)
                if candidate.precision > best_fallback.precision:
                    best_fallback = candidate

            if valid:
                return max(valid, key=lambda c: (c.coverage, c.precision))
            beams = [candidate.features for candidate in level_candidates]

        return best_fallback
