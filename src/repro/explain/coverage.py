"""Coverage estimation (Eq. 6).

Coverage of a feature set ``F`` is the probability that a random,
*unconstrained* perturbation of the original block still contains all the
features of ``F``.  It is the generalisability/simplicity surrogate that the
anchor search maximises among sufficiently precise candidates.  All candidate
sets are scored against the same background population of perturbations so
their coverages are directly comparable.

Scoring is vectorized: the population is indexed once — each block's feature
signatures (instruction content, dependency hazards, instruction count) are
extracted into hash sets and a count array — and every feature's presence
across the whole population becomes one boolean numpy row.  Coverage of a
feature set is then the mean of the AND of its rows, instead of the seed
implementation's per-feature re-scan of every block's instruction list.

The population and its index live in a :class:`PopulationRecord`, which an
:class:`~repro.runtime.session.ExplanationSession` shares across all beam
levels of a search *and* across repeated explanations of the same block, so
a fleet run pays for each background population exactly once.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.bb.block import BasicBlock
from repro.bb.features import (
    DependencyFeature,
    Feature,
    InstructionFeature,
    NumInstructionsFeature,
    feature_present,
)
from repro.perturb.sampler import PerturbationSampler


class PopulationRecord:
    """A background population plus its presence index (shareable state).

    The record is populated lazily through whichever sampler first needs it,
    so the random stream is consumed exactly as the unshared path would
    consume it; later users (other beam levels, repeated explanations of the
    same block in one session) reuse both the blocks and the index without
    touching their own random streams.
    """

    def __init__(self) -> None:
        self.population: List[BasicBlock] = []
        self._counts: Optional[np.ndarray] = None
        self._instruction_sets: List[frozenset] = []
        self._dependency_sets: List[frozenset] = []
        self._presence: Dict[Feature, np.ndarray] = {}

    # ------------------------------------------------------------ population

    def ensure(self, sampler: PerturbationSampler, size: int) -> List[BasicBlock]:
        """Grow the population to ``size`` via ``sampler`` (no-op if large enough)."""
        if len(self.population) < size:
            self.population.extend(
                sampler.sample_unconstrained(size - len(self.population))
            )
            self._invalidate_index()
        return self.population

    def _invalidate_index(self) -> None:
        # Population growth only appends blocks, so the per-block signature
        # lists stay valid — only the presence rows (whose length is the
        # population size) and the counts array need recomputing.
        self._counts = None
        self._presence = {}

    def _build_index(self) -> None:
        """Extract feature signatures of blocks not yet indexed (incremental).

        ``ensure`` only ever *extends* the population, so index builds after
        a growth step reuse every already-extracted signature set and touch
        only the new tail; the per-instruction signature extraction was a
        visible slice of warm-session profiles.
        """
        population = self.population
        for block in population[len(self._instruction_sets) :]:
            # Instruction.key() is exactly the (mnemonic, formatted operands)
            # signature this index matches against, and it is memoised per
            # instance — population blocks share instruction objects with the
            # block-key computation of the model cache, so most keys are
            # already formatted by the time the index is built.
            self._instruction_sets.append(
                frozenset(inst.key() for inst in block)
            )
            self._dependency_sets.append(
                frozenset(
                    (
                        dep.kind,
                        dep.location_space,
                        block[dep.source].mnemonic,
                        block[dep.destination].mnemonic,
                    )
                    for dep in block.dependencies
                )
            )
        self._counts = np.array(
            [block.num_instructions for block in population], dtype=np.int64
        )

    # -------------------------------------------------------------- presence

    def presence_row(self, feature: Feature) -> np.ndarray:
        """Boolean presence of one feature across the population (memoised)."""
        row = self._presence.get(feature)
        if row is None:
            if self._counts is None:
                self._build_index()
            row = self._compute_row(feature)
            row.setflags(write=False)
            self._presence[feature] = row
        return row

    def _compute_row(self, feature: Feature) -> np.ndarray:
        size = len(self.population)
        if isinstance(feature, NumInstructionsFeature):
            return self._counts == feature.count
        if isinstance(feature, InstructionFeature):
            signature = (feature.mnemonic, feature.operand_text)
            return np.fromiter(
                (signature in block_set for block_set in self._instruction_sets),
                dtype=bool,
                count=size,
            )
        if isinstance(feature, DependencyFeature):
            signature = (
                feature.dep_kind,
                feature.location_space,
                feature.source_mnemonic,
                feature.destination_mnemonic,
            )
            return np.fromiter(
                (signature in block_set for block_set in self._dependency_sets),
                dtype=bool,
                count=size,
            )
        # Unknown feature subtype: fall back to the generic per-block check.
        return np.fromiter(
            (feature_present(feature, block) for block in self.population),
            dtype=bool,
            count=size,
        )

    def presence_matrix(self, features: Sequence[Feature]) -> np.ndarray:
        """Stacked presence rows for a feature set (``len(features) × size``)."""
        return np.vstack([self.presence_row(feature) for feature in features])


class CoverageEstimator:
    """Empirical coverage over a shared background population.

    Pass a ``record`` to score against population state owned elsewhere (an
    explanation session's per-block cache); by default the estimator owns a
    private record, matching the seed behaviour of one population per search.
    """

    def __init__(
        self,
        sampler: PerturbationSampler,
        population_size: int = 400,
        *,
        record: Optional[PopulationRecord] = None,
    ) -> None:
        self.sampler = sampler
        self.population_size = population_size
        self.record = record if record is not None else PopulationRecord()

    # ------------------------------------------------------------ population

    def population(self) -> List[BasicBlock]:
        """The background population (drawn lazily, then cached)."""
        return self.record.ensure(self.sampler, self.population_size)

    # -------------------------------------------------------------- coverage

    def coverage(self, features: Iterable[Feature]) -> float:
        """Empirical coverage of a feature set (1.0 for the empty set)."""
        feature_list = list(features)
        population = self.population()
        if not population:
            return 0.0
        if not feature_list:
            return 1.0
        joint = self.record.presence_row(feature_list[0])
        if len(feature_list) > 1:
            joint = np.logical_and.reduce(
                self.record.presence_matrix(feature_list), axis=0
            )
        return int(np.count_nonzero(joint)) / len(population)

    def coverage_many(self, candidates: Sequence[Iterable[Feature]]) -> List[float]:
        """Coverage of several candidate sets against the same population."""
        return [self.coverage(candidate) for candidate in candidates]
