"""Coverage estimation (Eq. 6).

Coverage of a feature set ``F`` is the probability that a random,
*unconstrained* perturbation of the original block still contains all the
features of ``F``.  It is the generalisability/simplicity surrogate that the
anchor search maximises among sufficiently precise candidates.  All candidate
sets are scored against the same background population of perturbations so
their coverages are directly comparable.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.bb.block import BasicBlock
from repro.bb.features import Feature, feature_present
from repro.perturb.sampler import PerturbationSampler


class CoverageEstimator:
    """Empirical coverage over a shared background population."""

    def __init__(
        self, sampler: PerturbationSampler, population_size: int = 400
    ) -> None:
        self.sampler = sampler
        self.population_size = population_size
        self._population: List[BasicBlock] = []
        self._presence_cache: Dict[Feature, Tuple[bool, ...]] = {}

    # ------------------------------------------------------------ population

    def population(self) -> List[BasicBlock]:
        """The background population (drawn lazily, then cached)."""
        if not self._population:
            self._population = self.sampler.background_population(self.population_size)
        return self._population

    def _presence_vector(self, feature: Feature) -> Tuple[bool, ...]:
        """Presence of one feature across the population (memoised).

        Coverage of a feature *set* is the AND of its members' presence
        vectors, so caching per-feature vectors makes scoring many candidate
        sets cheap.
        """
        cached = self._presence_cache.get(feature)
        if cached is None:
            cached = tuple(
                feature_present(feature, candidate) for candidate in self.population()
            )
            self._presence_cache[feature] = cached
        return cached

    # -------------------------------------------------------------- coverage

    def coverage(self, features: Iterable[Feature]) -> float:
        """Empirical coverage of a feature set (1.0 for the empty set)."""
        feature_list = list(features)
        population = self.population()
        if not population:
            return 0.0
        if not feature_list:
            return 1.0
        vectors = [self._presence_vector(f) for f in feature_list]
        hits = sum(1 for joint in zip(*vectors) if all(joint))
        return hits / len(population)

    def coverage_many(
        self, candidates: Sequence[Iterable[Feature]]
    ) -> List[float]:
        """Coverage of several candidate sets against the same population."""
        return [self.coverage(candidate) for candidate in candidates]
