"""The :class:`Explanation` result object."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.bb.block import BasicBlock
from repro.bb.features import Feature, FeatureKind


@dataclass(frozen=True)
class Explanation:
    """COMET's explanation of one cost-model prediction.

    Attributes
    ----------
    block:
        The block that was explained.
    model_name:
        Name of the explained cost model.
    prediction:
        The model's (unperturbed) prediction for the block.
    features:
        The explanation feature set (may be empty if the model's prediction
        is insensitive to every perturbation considered).
    precision / coverage:
        Empirical estimates of Eq. 4 and Eq. 6 for the returned feature set.
    meets_threshold:
        Whether the precision estimate cleared the ``1 − δ`` threshold.  When
        no candidate cleared it, the most precise candidate found is returned
        with this flag set to ``False``.
    epsilon:
        The acceptance-ball radius used for this explanation.
    num_queries:
        Cost-model queries consumed while searching.
    precision_samples:
        Number of perturbation samples behind the precision estimate.
    candidates_evaluated:
        Number of candidate feature sets the beam search scored.
    """

    block: BasicBlock
    model_name: str
    prediction: float
    features: Tuple[Feature, ...]
    precision: float
    coverage: float
    meets_threshold: bool
    epsilon: float
    num_queries: int = 0
    precision_samples: int = 0
    candidates_evaluated: int = 0

    @classmethod
    def from_search(cls, search, anchor, *, num_queries: int) -> "Explanation":
        """Assemble the result of a finished anchor search.

        Shared by every driver of the search (the one-shot explainer and the
        session runtime), so the mapping from search state to result fields
        lives in exactly one place.
        """
        return cls(
            block=search.block,
            model_name=search.model.name,
            prediction=search.original_prediction,
            features=anchor.features,
            precision=anchor.precision,
            coverage=anchor.coverage,
            meets_threshold=anchor.meets_threshold,
            epsilon=search.tolerance,
            num_queries=num_queries,
            precision_samples=anchor.precision_samples,
            candidates_evaluated=len(search.evaluated),
        )

    # ------------------------------------------------------------ inspection

    @property
    def size(self) -> int:
        """Number of features in the explanation (the simplicity metric)."""
        return len(self.features)

    @property
    def feature_kinds(self) -> FrozenSet[FeatureKind]:
        """The kinds of features appearing in the explanation."""
        return frozenset(f.kind for f in self.features)

    def contains_kind(self, kind: FeatureKind) -> bool:
        """Whether the explanation contains a feature of the given kind."""
        return kind in self.feature_kinds

    @property
    def is_fine_grained(self) -> bool:
        """Whether the explanation contains any fine-grained feature (Section 6.3)."""
        return any(kind.is_fine_grained for kind in self.feature_kinds)

    # ------------------------------------------------------------- rendering

    def describe(self) -> str:
        """Multi-line human-readable rendering of the explanation."""
        lines = [
            f"Explanation for {self.model_name}",
            f"  prediction: {self.prediction:.2f} cycles (±{self.epsilon:.2f})",
            f"  precision:  {self.precision:.2f}"
            + ("" if self.meets_threshold else "  [below threshold]"),
            f"  coverage:   {self.coverage:.2f}",
            "  features:",
        ]
        if self.features:
            lines.extend(f"    - {feature.describe()}" for feature in self.features)
        else:
            lines.append("    (empty: prediction is insensitive to perturbations)")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly summary (used by the experiment harness)."""
        return {
            "model": self.model_name,
            "prediction": self.prediction,
            "precision": self.precision,
            "coverage": self.coverage,
            "meets_threshold": self.meets_threshold,
            "epsilon": self.epsilon,
            "size": self.size,
            "features": [f.describe() for f in self.features],
            "feature_kinds": sorted(k.value for k in self.feature_kinds),
            "num_queries": self.num_queries,
        }
