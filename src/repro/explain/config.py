"""Hyperparameters of the COMET explainer.

Defaults follow Section 6 and Appendix E of the paper where a value is given
(``delta`` = 0.3 so the precision threshold is 0.7; ``epsilon`` = 0.5 cycles
for practical cost models), and the Anchors defaults where the paper defers
to them (beam width, confidence).  Sample budgets are configurable because
the reproduction's benchmark harness trades a little estimator tightness for
wall-clock time; the paper-scale budgets can be restored by raising
``coverage_samples`` and ``max_precision_samples``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.perturb.config import PerturbationConfig


@dataclass(frozen=True)
class ExplainerConfig:
    """All knobs of the explanation search.

    Attributes
    ----------
    epsilon:
        Radius of the cost ball ``T`` around the original prediction: a
        perturbed block counts as "same prediction" if the model's output
        moves by at most ``epsilon`` cycles (Appendix E uses 0.5 for Ithemal
        and uiCA, 0.25 for the crude analytical model).
    relative_epsilon:
        Optional relative component: when set, the ball radius is
        ``max(epsilon, relative_epsilon * |M(β)|)``, which keeps the target
        meaningful for very slow blocks (e.g. division-bound blocks at
        30+ cycles).
    delta:
        Precision threshold is ``1 − delta`` (paper default 0.3 → 0.7).
    confidence_delta:
        Failure probability of the KL-LUCB confidence bounds (Anchors uses
        0.05).
    beam_width:
        Number of candidate feature sets kept per beam-search level.
    max_anchor_size:
        Largest explanation size considered before giving up and returning
        the most precise candidate found.
    batch_size / min_precision_samples / max_precision_samples:
        Sampling budget per candidate when estimating precision.
    coverage_samples:
        Size of the shared background population used for coverage estimates.
    lucb_tolerance:
        KL-LUCB stops once the upper bound of the best challenger and the
        lower bound of the provisional winners are within this tolerance.
    batch_queries:
        When true (the default), all perturbed blocks of a precision
        refinement round are routed through a single ``predict_batch`` call
        so vectorized/batched cost models amortise per-query overhead.  When
        false the search uses the legacy one-block-at-a-time query path.
        Both paths consume the random stream identically, so for models
        whose batch path is numerically exact (analytical, the simulators,
        cached wrappers around them) seeded explanations are bit-for-bit
        independent of this flag.  The neural model's batched recurrence may
        differ from its sequential path in the last float ulps (BLAS
        summation order), which can in principle flip an outcome that lands
        exactly on the tolerance-ball boundary.
    shared_background:
        When true (the default), an
        :class:`~repro.runtime.session.ExplanationSession` reuses one
        background population (and its presence index) per block across all
        anchor beam levels and across repeated explanations of that block in
        the run.  When false every search draws a private population, exactly
        as the one-shot explainer does.  This knob is about *state sharing*;
        the execution substrate is selected separately, on the session or
        model (``backend=``), because where predictions run must never change
        what the search computes.
    perturbation:
        Configuration of the perturbation algorithm Γ.
    """

    epsilon: float = 0.5
    relative_epsilon: float = 0.1
    delta: float = 0.3
    confidence_delta: float = 0.05
    beam_width: int = 2
    max_anchor_size: int = 3
    batch_size: int = 12
    min_precision_samples: int = 24
    max_precision_samples: int = 150
    coverage_samples: int = 400
    lucb_tolerance: float = 0.15
    batch_queries: bool = True
    shared_background: bool = True
    perturbation: PerturbationConfig = PerturbationConfig()

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if not 0.0 < self.delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        if not 0.0 < self.confidence_delta < 1.0:
            raise ValueError("confidence_delta must be in (0, 1)")
        if self.beam_width < 1 or self.max_anchor_size < 1:
            raise ValueError("beam_width and max_anchor_size must be >= 1")
        if self.min_precision_samples > self.max_precision_samples:
            raise ValueError("min_precision_samples cannot exceed max_precision_samples")

    @property
    def precision_threshold(self) -> float:
        """The precision an explanation must exceed (``1 − delta``)."""
        return 1.0 - self.delta

    def tolerance_for(self, prediction: float) -> float:
        """Radius of the acceptance ball ``T`` for a given original prediction."""
        return max(self.epsilon, self.relative_epsilon * abs(prediction))

    def with_overrides(self, **changes) -> "ExplainerConfig":
        """A copy of this configuration with the given fields replaced."""
        return replace(self, **changes)
