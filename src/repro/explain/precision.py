"""Precision estimation with KL-LUCB confidence bounds.

The precision of a candidate feature set ``F`` (Eq. 4) is the probability
that a perturbation drawn from ``D_F`` keeps the cost model's prediction
inside the acceptance ball ``T``.  Each candidate is a Bernoulli arm; the
anchor search needs to (i) identify the best arms at each beam level and
(ii) certify whether a candidate's precision exceeds the threshold — both
with as few model queries as possible.  Following the paper (and Ribeiro et
al., 2018), we use the KL-LUCB bandit algorithm of Kaufmann &
Kalyanakrishnan (2013): confidence bounds are derived from the
Kullback–Leibler divergence between Bernoulli distributions, which is much
tighter than Hoeffding bounds for probabilities near 0 or 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


def kl_bernoulli(p: float, q: float) -> float:
    """KL divergence between Bernoulli(p) and Bernoulli(q)."""
    p = min(max(p, 1e-12), 1.0 - 1e-12)
    q = min(max(q, 1e-12), 1.0 - 1e-12)
    return p * math.log(p / q) + (1.0 - p) * math.log((1.0 - p) / (1.0 - q))


def bernoulli_upper_bound(p_hat: float, n: int, beta: float, tolerance: float = 1e-5) -> float:
    """Largest ``q ≥ p_hat`` with ``n · KL(p_hat, q) ≤ beta`` (bisection)."""
    if n <= 0:
        return 1.0
    level = beta / n
    low, high = p_hat, 1.0
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if kl_bernoulli(p_hat, mid) > level:
            high = mid
        else:
            low = mid
    return (low + high) / 2.0


def bernoulli_lower_bound(p_hat: float, n: int, beta: float, tolerance: float = 1e-5) -> float:
    """Smallest ``q ≤ p_hat`` with ``n · KL(p_hat, q) ≤ beta`` (bisection)."""
    if n <= 0:
        return 0.0
    level = beta / n
    low, high = 0.0, p_hat
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if kl_bernoulli(p_hat, mid) > level:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


def confidence_beta(num_arms: int, round_index: int, delta: float) -> float:
    """Exploration rate ``beta(t, δ)`` of KL-LUCB (Kaufmann & Kalyanakrishnan).

    Uses the same constants as the reference Anchors implementation
    (``alpha = 1.1``, ``k = 405.5``).
    """
    alpha = 1.1
    k = 405.5
    t = max(round_index, 1)
    inner = math.log(k * max(num_arms, 1) * (t**alpha) / delta)
    return inner + math.log(max(inner, 1e-12))


@dataclass
class ArmStatistics:
    """Sampling statistics of one candidate feature set (one bandit arm)."""

    samples: int = 0
    positives: int = 0

    @property
    def mean(self) -> float:
        """Empirical precision estimate."""
        return self.positives / self.samples if self.samples else 0.0

    def update(self, outcomes: Sequence[bool]) -> None:
        """Record a batch of Bernoulli outcomes."""
        self.samples += len(outcomes)
        self.positives += int(sum(bool(o) for o in outcomes))

    def upper(self, beta: float) -> float:
        return bernoulli_upper_bound(self.mean, self.samples, beta)

    def lower(self, beta: float) -> float:
        return bernoulli_lower_bound(self.mean, self.samples, beta)


#: A function that draws ``n`` Bernoulli outcomes for one arm.
SampleFunction = Callable[[int], Sequence[bool]]


class PrecisionEstimator:
    """KL-LUCB estimator over a set of candidate arms.

    Parameters
    ----------
    sample_functions:
        One sampling callback per arm.  Each call performs perturbations and
        cost-model queries, so the estimator's job is to spend as few calls
        as possible.
    confidence_delta:
        Failure probability of the confidence bounds.
    batch_size:
        Number of fresh samples drawn per arm per refinement step.
    min_samples / max_samples:
        Per-arm sampling budget.
    """

    def __init__(
        self,
        sample_functions: Sequence[SampleFunction],
        *,
        confidence_delta: float = 0.05,
        batch_size: int = 12,
        min_samples: int = 20,
        max_samples: int = 150,
    ) -> None:
        if not sample_functions:
            raise ValueError("need at least one arm")
        self.sample_functions = list(sample_functions)
        self.confidence_delta = confidence_delta
        self.batch_size = batch_size
        self.min_samples = min_samples
        self.max_samples = max_samples
        self.stats: List[ArmStatistics] = [ArmStatistics() for _ in sample_functions]
        self.rounds = 0

    # ------------------------------------------------------------- sampling

    def _draw(self, arm: int, count: int) -> None:
        stats = self.stats[arm]
        remaining = self.max_samples - stats.samples
        count = min(count, max(remaining, 0))
        if count <= 0:
            return
        stats.update(self.sample_functions[arm](count))

    def _ensure_minimum(self) -> None:
        for arm in range(len(self.stats)):
            if self.stats[arm].samples < self.min_samples:
                self._draw(arm, self.min_samples - self.stats[arm].samples)

    # ------------------------------------------------------- top-n selection

    def select_top(self, top_n: int, tolerance: float = 0.15) -> List[int]:
        """Indices of (approximately) the ``top_n`` most precise arms.

        Implements the LUCB stopping rule: refine the provisional winners'
        lower bounds and the best challenger's upper bound until they are
        separated by ``tolerance`` or the sampling budget runs out.
        """
        num_arms = len(self.stats)
        top_n = min(top_n, num_arms)
        self._ensure_minimum()

        while True:
            self.rounds += 1
            beta = confidence_beta(num_arms, self.rounds, self.confidence_delta)
            means = [s.mean for s in self.stats]
            order = sorted(range(num_arms), key=lambda i: means[i], reverse=True)
            winners = order[:top_n]
            challengers = order[top_n:]
            if not challengers:
                return winners

            weakest_winner = min(winners, key=lambda i: self.stats[i].lower(beta))
            strongest_challenger = max(
                challengers, key=lambda i: self.stats[i].upper(beta)
            )
            gap = self.stats[strongest_challenger].upper(beta) - self.stats[
                weakest_winner
            ].lower(beta)
            if gap <= tolerance:
                return winners

            exhausted_winner = self.stats[weakest_winner].samples >= self.max_samples
            exhausted_challenger = (
                self.stats[strongest_challenger].samples >= self.max_samples
            )
            if exhausted_winner and exhausted_challenger:
                return winners
            if not exhausted_winner:
                self._draw(weakest_winner, self.batch_size)
            if not exhausted_challenger:
                self._draw(strongest_challenger, self.batch_size)

    # ------------------------------------------------------ threshold check

    def certify_threshold(
        self, arm: int, threshold: float, tolerance: float = 0.05
    ) -> Tuple[bool, ArmStatistics]:
        """Decide whether ``arm``'s precision exceeds ``threshold``.

        Samples the arm until its confidence interval clears the threshold on
        one side (within ``tolerance``) or the budget is exhausted; returns
        the decision and the final statistics.
        """
        stats = self.stats[arm]
        if stats.samples < self.min_samples:
            self._draw(arm, self.min_samples - stats.samples)
        while True:
            self.rounds += 1
            beta = confidence_beta(len(self.stats), self.rounds, self.confidence_delta)
            lower = stats.lower(beta)
            upper = stats.upper(beta)
            if lower >= threshold - tolerance:
                return True, stats
            if upper < threshold:
                return False, stats
            if stats.samples >= self.max_samples:
                return stats.mean >= threshold, stats
            self._draw(arm, self.batch_size)

    # ------------------------------------------------------------ reporting

    def summary(self) -> List[Dict[str, float]]:
        """Mean/sample-count summary per arm (used in diagnostics and tests)."""
        return [
            {"mean": s.mean, "samples": float(s.samples), "positives": float(s.positives)}
            for s in self.stats
        ]
