"""Precision estimation with KL-LUCB confidence bounds.

The precision of a candidate feature set ``F`` (Eq. 4) is the probability
that a perturbation drawn from ``D_F`` keeps the cost model's prediction
inside the acceptance ball ``T``.  Each candidate is a Bernoulli arm; the
anchor search needs to (i) identify the best arms at each beam level and
(ii) certify whether a candidate's precision exceeds the threshold — both
with as few model queries as possible.  Following the paper (and Ribeiro et
al., 2018), we use the KL-LUCB bandit algorithm of Kaufmann &
Kalyanakrishnan (2013): confidence bounds are derived from the
Kullback–Leibler divergence between Bernoulli distributions, which is much
tighter than Hoeffding bounds for probabilities near 0 or 1.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.cancellation import CancelToken


def kl_bernoulli(p: float, q: float) -> float:
    """KL divergence between Bernoulli(p) and Bernoulli(q)."""
    p = min(max(p, 1e-12), 1.0 - 1e-12)
    q = min(max(q, 1e-12), 1.0 - 1e-12)
    return p * math.log(p / q) + (1.0 - p) * math.log((1.0 - p) / (1.0 - q))


# Memo over completed bisections.  KL-LUCB rounds re-request the same small
# ``(successes, trials, level)`` triples heavily — early rounds see identical
# arm statistics across candidates and repeats across rounds — so the scalar
# bisections (the ≤32-arm delegate path below, plus every per-arm
# ``ArmStatistics``/``_ArmView`` bound) cache on their full argument tuple.
# The bound is a pure function of the key, so concurrent explain threads can
# race on the dict benignly.  Cleared wholesale when full: the working set per
# explanation is a few thousand keys, so eviction order does not matter.
_BOUND_MEMO: Dict[tuple, float] = {}
_BOUND_MEMO_LIMIT = 65536
_BOUND_MEMO_ENABLED = True


@contextmanager
def bound_memo_disabled():
    """Disable the bisection memo for a scope (benchmark baseline lanes)."""
    global _BOUND_MEMO_ENABLED
    previous = _BOUND_MEMO_ENABLED
    _BOUND_MEMO_ENABLED = False
    try:
        yield
    finally:
        _BOUND_MEMO_ENABLED = previous


def bernoulli_upper_bound(p_hat: float, n: int, beta: float, tolerance: float = 1e-5) -> float:
    """Largest ``q ≥ p_hat`` with ``n · KL(p_hat, q) ≤ beta`` (bisection)."""
    if n <= 0:
        return 1.0
    if _BOUND_MEMO_ENABLED:
        key = (True, p_hat, n, beta, tolerance)
        cached = _BOUND_MEMO.get(key)
        if cached is not None:
            return cached
    level = beta / n
    low, high = p_hat, 1.0
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if kl_bernoulli(p_hat, mid) > level:
            high = mid
        else:
            low = mid
    value = (low + high) / 2.0
    if _BOUND_MEMO_ENABLED:
        if len(_BOUND_MEMO) >= _BOUND_MEMO_LIMIT:
            _BOUND_MEMO.clear()
        _BOUND_MEMO[key] = value
    return value


def bernoulli_lower_bound(p_hat: float, n: int, beta: float, tolerance: float = 1e-5) -> float:
    """Smallest ``q ≤ p_hat`` with ``n · KL(p_hat, q) ≤ beta`` (bisection)."""
    if n <= 0:
        return 0.0
    if _BOUND_MEMO_ENABLED:
        key = (False, p_hat, n, beta, tolerance)
        cached = _BOUND_MEMO.get(key)
        if cached is not None:
            return cached
    level = beta / n
    low, high = 0.0, p_hat
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if kl_bernoulli(p_hat, mid) > level:
            low = mid
        else:
            high = mid
    value = (low + high) / 2.0
    if _BOUND_MEMO_ENABLED:
        if len(_BOUND_MEMO) >= _BOUND_MEMO_LIMIT:
            _BOUND_MEMO.clear()
        _BOUND_MEMO[key] = value
    return value


def _kl_bernoulli_vec(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Elementwise Bernoulli KL divergence (vector form of :func:`kl_bernoulli`)."""
    p = np.clip(p, 1e-12, 1.0 - 1e-12)
    q = np.clip(q, 1e-12, 1.0 - 1e-12)
    return p * np.log(p / q) + (1.0 - p) * np.log((1.0 - p) / (1.0 - q))


def _bernoulli_bounds_vec(
    p_hats: np.ndarray,
    ns: np.ndarray,
    beta: float,
    upper,
    tolerance: float,
) -> np.ndarray:
    """One vectorized bisection refining every arm's bound simultaneously.

    ``upper`` selects the bracket (``[p, 1]`` vs ``[0, p]``) and which side a
    KL excess moves; it may be a scalar bool or a per-element boolean array,
    so one call can refine a KL-LUCB round's winner *lower* bounds and
    challenger *upper* bounds together.  Unsampled arms get the vacuous
    bound.  The empirical-side KL terms are constant across bisection steps,
    so they are hoisted out of the loop (``KL(p, q) = H-term(p) − p·log(q) −
    (1−p)·log(1−q)``).
    """
    p = np.asarray(p_hats, dtype=float)
    n = np.asarray(ns, dtype=float)
    if p.size == 0:
        return p.copy()
    upper_flags = np.broadcast_to(np.asarray(upper, dtype=bool), p.shape)
    if p.size <= 32:
        # KL-LUCB rounds refine a handful of winner/challenger arms at a
        # time; at those sizes ~17 bisection steps of numpy dispatch cost
        # more than the arithmetic.  Delegate to the scalar bisections
        # (which small-array callers are also tested for equivalence
        # against) and keep the vectorized loop for wide sweeps.
        out = np.empty(p.shape, dtype=float)
        flat_p, flat_n = p.ravel(), n.ravel()
        flat_u, flat_o = upper_flags.ravel(), out.ravel()
        for i in range(flat_p.shape[0]):
            if flat_u[i]:
                flat_o[i] = bernoulli_upper_bound(
                    float(flat_p[i]), int(flat_n[i]), beta, tolerance
                )
            else:
                flat_o[i] = bernoulli_lower_bound(
                    float(flat_p[i]), int(flat_n[i]), beta, tolerance
                )
        return out
    level = np.divide(beta, n, out=np.full_like(p, np.inf), where=n > 0)
    upper_mask = upper_flags
    low = np.where(upper_mask, p, 0.0)
    high = np.where(upper_mask, 1.0, p)
    pc = np.clip(p, 1e-12, 1.0 - 1e-12)
    one_minus_pc = 1.0 - pc
    entropy = pc * np.log(pc) + one_minus_pc * np.log(one_minus_pc)
    while float(np.max(high - low)) > tolerance:
        mid = 0.5 * (low + high)
        qc = np.clip(mid, 1e-12, 1.0 - 1e-12)
        kl = entropy - pc * np.log(qc) - one_minus_pc * np.log(1.0 - qc)
        # An excess tightens toward the empirical mean: down from above for
        # upper bounds, up from below for lower bounds.
        set_high = (kl > level) == upper_mask
        high = np.where(set_high, mid, high)
        low = np.where(set_high, low, mid)
    return np.where(n > 0, 0.5 * (low + high), np.where(upper_mask, 1.0, 0.0))


def bernoulli_upper_bounds(
    p_hats: np.ndarray, ns: np.ndarray, beta: float, tolerance: float = 1e-5
) -> np.ndarray:
    """Vectorized :func:`bernoulli_upper_bound` over arrays of arms."""
    return _bernoulli_bounds_vec(p_hats, ns, beta, upper=True, tolerance=tolerance)


def bernoulli_lower_bounds(
    p_hats: np.ndarray, ns: np.ndarray, beta: float, tolerance: float = 1e-5
) -> np.ndarray:
    """Vectorized :func:`bernoulli_lower_bound` over arrays of arms."""
    return _bernoulli_bounds_vec(p_hats, ns, beta, upper=False, tolerance=tolerance)


def confidence_beta(num_arms: int, round_index: int, delta: float) -> float:
    """Exploration rate ``beta(t, δ)`` of KL-LUCB (Kaufmann & Kalyanakrishnan).

    Uses the same constants as the reference Anchors implementation
    (``alpha = 1.1``, ``k = 405.5``).
    """
    alpha = 1.1
    k = 405.5
    t = max(round_index, 1)
    inner = math.log(k * max(num_arms, 1) * (t**alpha) / delta)
    return inner + math.log(max(inner, 1e-12))


@dataclass
class ArmStatistics:
    """Sampling statistics of one candidate feature set (one bandit arm)."""

    samples: int = 0
    positives: int = 0

    @property
    def mean(self) -> float:
        """Empirical precision estimate."""
        return self.positives / self.samples if self.samples else 0.0

    def update(self, outcomes: Sequence[bool]) -> None:
        """Record a batch of Bernoulli outcomes.

        Accepts plain sequences and numpy boolean arrays alike;
        ``count_nonzero`` keeps the tally C-speed for batched outcomes
        instead of a Python-level ``sum(bool(o) ...)`` loop.
        """
        self.samples += len(outcomes)
        self.positives += int(np.count_nonzero(outcomes))

    def upper(self, beta: float) -> float:
        return bernoulli_upper_bound(self.mean, self.samples, beta)

    def lower(self, beta: float) -> float:
        return bernoulli_lower_bound(self.mean, self.samples, beta)


class _ArmView:
    """One arm's live view of the estimator's contiguous stat arrays.

    The estimator keeps its round state as ``(successes, trials)`` int64
    arrays (one vectorized mean/bound computation per round instead of a
    Python-object walk); this view re-exposes the :class:`ArmStatistics`
    API — ``samples``/``positives``/``mean``/``update`` and the scalar
    bounds — so estimator consumers are unchanged.
    """

    __slots__ = ("_estimator", "_arm")

    def __init__(self, estimator: "PrecisionEstimator", arm: int) -> None:
        self._estimator = estimator
        self._arm = arm

    @property
    def samples(self) -> int:
        return int(self._estimator._trials[self._arm])

    @property
    def positives(self) -> int:
        return int(self._estimator._successes[self._arm])

    @property
    def mean(self) -> float:
        """Empirical precision estimate."""
        trials = self.samples
        return self.positives / trials if trials else 0.0

    def update(self, outcomes: Sequence[bool]) -> None:
        """Record a batch of Bernoulli outcomes into the estimator arrays."""
        self._estimator._trials[self._arm] += len(outcomes)
        self._estimator._successes[self._arm] += int(np.count_nonzero(outcomes))

    def upper(self, beta: float) -> float:
        return bernoulli_upper_bound(self.mean, self.samples, beta)

    def lower(self, beta: float) -> float:
        return bernoulli_lower_bound(self.mean, self.samples, beta)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_ArmView(samples={self.samples}, positives={self.positives})"


#: A function that draws ``n`` Bernoulli outcomes for one arm.
SampleFunction = Callable[[int], Sequence[bool]]

#: A function that serves a whole refinement round: it receives ``(arm,
#: count)`` requests and returns one outcome sequence per request, in request
#: order.  Implementations are expected to funnel all of the round's
#: cost-model queries through a single ``predict_batch`` call.
BatchSampleFunction = Callable[[Sequence[Tuple[int, int]]], Sequence[Sequence[bool]]]

#: One refinement round of already-clamped ``(arm, count)`` draw requests.
RoundRequest = List[Tuple[int, int]]

#: The generator form of an estimator run: yields :data:`RoundRequest` rounds,
#: receives one outcome sequence per request (via ``send``), and returns the
#: final result through ``StopIteration.value``.
RoundOutcomes = Sequence[Sequence[bool]]


class PrecisionEstimator:
    """KL-LUCB estimator over a set of candidate arms.

    Parameters
    ----------
    sample_functions:
        One sampling callback per arm.  Each call performs perturbations and
        cost-model queries, so the estimator's job is to spend as few calls
        as possible.
    batch_sampler:
        Alternative to ``sample_functions``: one callback serving a whole
        refinement round of ``(arm, count)`` requests at once, so the arm
        samples of a round share a single batched cost-model query
        (``num_arms`` is then required).  Requests are issued in a
        deterministic order — ascending arm for the minimum fill, winner
        before challenger during refinement — matching the sequential path's
        rng-consumption order exactly.
    confidence_delta:
        Failure probability of the confidence bounds.
    batch_size:
        Number of fresh samples drawn per arm per refinement step.
    min_samples / max_samples:
        Per-arm sampling budget.
    cancel:
        Optional :class:`~repro.utils.cancellation.CancelToken`, checked at
        the top of every refinement round (the natural boundary between two
        batched cost-model queries).  A token that never fires does not
        touch the sampling loop, so seeded results are bit-for-bit
        unchanged by passing one.
    """

    def __init__(
        self,
        sample_functions: Optional[Sequence[SampleFunction]] = None,
        *,
        batch_sampler: Optional[BatchSampleFunction] = None,
        num_arms: Optional[int] = None,
        confidence_delta: float = 0.05,
        batch_size: int = 12,
        min_samples: int = 20,
        max_samples: int = 150,
        cancel: Optional[CancelToken] = None,
    ) -> None:
        if batch_sampler is not None:
            if sample_functions:
                raise ValueError("pass either sample_functions or batch_sampler, not both")
            if not num_arms or num_arms < 1:
                raise ValueError("batch_sampler requires num_arms >= 1")
            self.sample_functions: Optional[List[SampleFunction]] = None
            arms = num_arms
        elif sample_functions:
            self.sample_functions = list(sample_functions)
            arms = len(self.sample_functions)
        elif num_arms and num_arms >= 1:
            # Externally served: the caller drives the ``*_rounds`` generators
            # and supplies each round's outcomes itself (continuous batching).
            self.sample_functions = None
            arms = num_arms
        else:
            raise ValueError("need at least one arm")
        self.batch_sampler = batch_sampler
        self.confidence_delta = confidence_delta
        self.batch_size = batch_size
        self.min_samples = min_samples
        self.max_samples = max_samples
        # Contiguous per-arm round state: one vectorized mean/bound
        # computation per KL-LUCB round reads these directly; `stats` holds
        # per-arm views with the ArmStatistics API for everything else.
        self._successes = np.zeros(arms, dtype=np.int64)
        self._trials = np.zeros(arms, dtype=np.int64)
        self.stats: List[_ArmView] = [_ArmView(self, arm) for arm in range(arms)]
        self.rounds = 0
        self.cancel = cancel

    # ------------------------------------------------------------- sampling

    def _clamp_round(self, requests: Sequence[Tuple[int, int]]) -> RoundRequest:
        """Clamp a round's draw requests to each arm's remaining budget.

        Repeats of the same arm within one round are tracked so the combined
        count never exceeds ``max_samples``; zero-count requests are dropped.
        """
        clamped: RoundRequest = []
        pending: Dict[int, int] = {}
        trials = self._trials
        for arm, count in requests:
            taken = int(trials[arm]) + pending.get(arm, 0)
            count = min(count, max(self.max_samples - taken, 0))
            if count <= 0:
                continue
            pending[arm] = pending.get(arm, 0) + count
            clamped.append((arm, count))
        return clamped

    def _record_round(self, clamped: RoundRequest, outcome_batches: RoundOutcomes) -> None:
        """Fold one served round's outcomes into the arm stat arrays."""
        if len(outcome_batches) != len(clamped):
            raise ValueError(
                f"batch sampler returned {len(outcome_batches)} outcome "
                f"sequences for {len(clamped)} requests"
            )
        for (arm, _), outcomes in zip(clamped, outcome_batches):
            self._trials[arm] += len(outcomes)
            self._successes[arm] += int(np.count_nonzero(outcomes))

    def _request_round(self, requests: Sequence[Tuple[int, int]]):
        """Generator step: clamp a round, yield it for serving, record outcomes.

        The shared building block of the ``*_rounds`` generators: a round that
        clamps to nothing is skipped without yielding, so external drivers only
        ever see rounds that actually need cost-model queries.
        """
        clamped = self._clamp_round(requests)
        if not clamped:
            return
        outcome_batches = yield clamped
        self._record_round(clamped, outcome_batches)

    def _serve_round(self, clamped: RoundRequest) -> RoundOutcomes:
        """Serve one clamped round through the configured sampler.

        Used by the blocking API (:meth:`select_top` / :meth:`certify_threshold`)
        to drive the round generators in-process; requests are served either by
        the round-level ``batch_sampler`` — one batched cost-model query for the
        whole round — or arm by arm through the per-arm sample functions.
        """
        if self.batch_sampler is not None:
            return self.batch_sampler(clamped)
        if self.sample_functions is None:
            raise ValueError(
                "estimator has no sampler configured; drive the *_rounds "
                "generators externally instead"
            )
        return [self.sample_functions[arm](count) for arm, count in clamped]

    def _drive(self, generator):
        """Run a round generator to completion with the in-process sampler."""
        payload: Optional[RoundOutcomes] = None
        while True:
            try:
                clamped = generator.send(payload)
            except StopIteration as stop:
                return stop.value
            payload = self._serve_round(clamped)

    def _draw_many(self, requests: Sequence[Tuple[int, int]]) -> None:
        """Draw fresh outcomes for several arms in one refinement round."""
        self._drive(self._request_round(requests))

    def _draw(self, arm: int, count: int) -> None:
        self._draw_many([(arm, count)])

    def _minimum_fill_requests(self) -> List[Tuple[int, int]]:
        trials = self._trials
        minimum = self.min_samples
        return [
            (arm, minimum - int(trials[arm]))
            for arm in range(trials.shape[0])
            if trials[arm] < minimum
        ]

    def _ensure_minimum(self) -> None:
        self._draw_many(self._minimum_fill_requests())

    # ------------------------------------------------------- top-n selection

    def select_top(self, top_n: int, tolerance: float = 0.15) -> List[int]:
        """Indices of (approximately) the ``top_n`` most precise arms.

        Implements the LUCB stopping rule: refine the provisional winners'
        lower bounds and the best challenger's upper bound until they are
        separated by ``tolerance`` or the sampling budget runs out.
        """
        return self._drive(self.select_top_rounds(top_n, tolerance))

    def select_top_rounds(self, top_n: int, tolerance: float = 0.15):
        """Round-generator form of :meth:`select_top`.

        Yields one clamped :data:`RoundRequest` per refinement round and
        expects the served outcome sequences back via ``send``; the winner
        list arrives through ``StopIteration.value``.  This is the estimator
        half of the continuous-batching step API: an external driver can
        interleave many estimators' rounds into fused cost-model queries.
        The round structure, clamping and rng-relevant request order are
        identical to the blocking method, which is just a driver over this
        generator.
        """
        num_arms = int(self._trials.shape[0])
        top_n = min(top_n, num_arms)
        yield from self._request_round(self._minimum_fill_requests())

        while True:
            if self.cancel is not None:
                self.cancel.check()
            self.rounds += 1
            beta = confidence_beta(num_arms, self.rounds, self.confidence_delta)
            samples = self._trials.astype(float)
            means = np.divide(
                self._successes,
                samples,
                out=np.zeros(num_arms, dtype=float),
                where=self._trials > 0,
            )
            # Stable descending sort: matches sorted(..., reverse=True) on ties.
            order = np.argsort(-means, kind="stable")
            winners = [int(i) for i in order[:top_n]]
            challengers = order[top_n:]
            if challengers.size == 0:
                return winners

            # One combined bisection refines the winners' lower bounds and
            # the challengers' upper bounds together (the `upper` mask
            # selects per element).
            lucb_index = np.concatenate(
                (np.array(winners, dtype=np.intp), challengers)
            )
            upper_mask = np.zeros(lucb_index.shape[0], dtype=bool)
            upper_mask[top_n:] = True
            bounds = _bernoulli_bounds_vec(
                means[lucb_index], samples[lucb_index], beta, upper_mask, 1e-5
            )
            winner_lowers = bounds[:top_n]
            challenger_uppers = bounds[top_n:]
            weakest_winner = winners[int(np.argmin(winner_lowers))]
            strongest_challenger = int(challengers[int(np.argmax(challenger_uppers))])
            gap = float(np.max(challenger_uppers) - np.min(winner_lowers))
            if gap <= tolerance:
                return winners

            exhausted_winner = self._trials[weakest_winner] >= self.max_samples
            exhausted_challenger = (
                self._trials[strongest_challenger] >= self.max_samples
            )
            if exhausted_winner and exhausted_challenger:
                return winners
            # Both arms' fresh samples form one refinement round, so a
            # round-level batch sampler serves them with a single batched
            # cost-model query (winner first, matching the sequential order).
            round_requests: List[Tuple[int, int]] = []
            if not exhausted_winner:
                round_requests.append((weakest_winner, self.batch_size))
            if not exhausted_challenger:
                round_requests.append((strongest_challenger, self.batch_size))
            yield from self._request_round(round_requests)

    # ------------------------------------------------------ threshold check

    def certify_threshold(
        self, arm: int, threshold: float, tolerance: float = 0.05
    ) -> Tuple[bool, ArmStatistics]:
        """Decide whether ``arm``'s precision exceeds ``threshold``.

        Samples the arm until its confidence interval clears the threshold on
        one side (within ``tolerance``) or the budget is exhausted; returns
        the decision and the final statistics.
        """
        return self._drive(self.certify_threshold_rounds(arm, threshold, tolerance))

    def certify_threshold_rounds(
        self, arm: int, threshold: float, tolerance: float = 0.05
    ):
        """Round-generator form of :meth:`certify_threshold`.

        Same protocol as :meth:`select_top_rounds`; the ``(meets, stats)``
        decision arrives through ``StopIteration.value``.
        """
        stats = self.stats[arm]
        if stats.samples < self.min_samples:
            yield from self._request_round([(arm, self.min_samples - stats.samples)])
        while True:
            if self.cancel is not None:
                self.cancel.check()
            self.rounds += 1
            beta = confidence_beta(len(self.stats), self.rounds, self.confidence_delta)
            lower = stats.lower(beta)
            upper = stats.upper(beta)
            if lower >= threshold - tolerance:
                return True, stats
            if upper < threshold:
                return False, stats
            if stats.samples >= self.max_samples:
                return stats.mean >= threshold, stats
            yield from self._request_round([(arm, self.batch_size)])

    # ------------------------------------------------------------ reporting

    def summary(self) -> List[Dict[str, float]]:
        """Mean/sample-count summary per arm (used in diagnostics and tests)."""
        return [
            {"mean": s.mean, "samples": float(s.samples), "positives": float(s.positives)}
            for s in self.stats
        ]
