"""The public COMET explainer API."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.bb.block import BasicBlock
from repro.explain.anchors import AnchorSearch
from repro.explain.config import ExplainerConfig
from repro.explain.explanation import Explanation
from repro.models.base import CostModel, QueryCounter
from repro.utils.rng import RandomSource, as_rng, spawn_rngs


class CometExplainer:
    """Generates COMET explanations for a given cost model.

    Parameters
    ----------
    model:
        Any object implementing the :class:`~repro.models.base.CostModel`
        query interface.  Wrapping it in
        :class:`~repro.models.base.CachedCostModel` is recommended for
        expensive models.
    config:
        Explanation hyperparameters; the defaults follow the paper.
    rng:
        Random source controlling both the perturbation algorithm and the
        sampling order (pass an int for reproducible explanations).

    Example
    -------
    >>> from repro.bb import BasicBlock
    >>> from repro.models import AnalyticalCostModel
    >>> from repro.explain import CometExplainer, ExplainerConfig
    >>> model = AnalyticalCostModel("hsw")
    >>> block = BasicBlock.from_text("add rcx, rax\\nmov rdx, rcx\\npop rbx")
    >>> explainer = CometExplainer(model, ExplainerConfig(epsilon=0.25))
    >>> explanation = explainer.explain(block)
    >>> explanation.precision >= 0.0
    True
    """

    def __init__(
        self,
        model: CostModel,
        config: Optional[ExplainerConfig] = None,
        rng: RandomSource = None,
    ) -> None:
        self.model = model
        self.config = config or ExplainerConfig()
        self._rng = as_rng(rng)

    def explain(self, block: BasicBlock, rng: RandomSource = None) -> Explanation:
        """Explain the model's prediction for ``block``."""
        generator = as_rng(rng) if rng is not None else self._rng
        with QueryCounter(self.model) as counter:
            search = AnchorSearch(self.model, block, self.config, generator)
            anchor = search.search()
        return Explanation(
            block=block,
            model_name=self.model.name,
            prediction=search.original_prediction,
            features=anchor.features,
            precision=anchor.precision,
            coverage=anchor.coverage,
            meets_threshold=anchor.meets_threshold,
            epsilon=search.tolerance,
            num_queries=counter.queries,
            precision_samples=anchor.precision_samples,
            candidates_evaluated=len(search.evaluated),
        )

    def explain_many(
        self, blocks: Sequence[BasicBlock], rng: RandomSource = None
    ) -> List[Explanation]:
        """Explain several blocks with independent random streams."""
        seeds = spawn_rngs(rng if rng is not None else self._rng, len(blocks))
        return [self.explain(block, rng=seed) for block, seed in zip(blocks, seeds)]


def explain_block(
    model: CostModel,
    block: BasicBlock,
    *,
    config: Optional[ExplainerConfig] = None,
    rng: RandomSource = None,
) -> Explanation:
    """One-shot convenience wrapper around :class:`CometExplainer`."""
    return CometExplainer(model, config, rng).explain(block)
