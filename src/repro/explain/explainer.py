"""The public COMET explainer API."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Union

from repro.bb.block import BasicBlock
from repro.explain.anchors import AnchorSearch
from repro.explain.config import ExplainerConfig
from repro.explain.explanation import Explanation
from repro.models.base import CostModel, QueryCounter
from repro.runtime.backend import BackendSource, ExecutionBackend, resolve_backend
from repro.utils.rng import RandomSource, as_rng

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.runtime.session import ExplanationSession


class CometExplainer:
    """Generates COMET explanations for a given cost model.

    Parameters
    ----------
    model:
        Any object implementing the :class:`~repro.models.base.CostModel`
        query interface.  Wrapping it in
        :class:`~repro.models.base.CachedCostModel` is recommended for
        expensive models (:meth:`explain_many` does this automatically, via
        its session).
    config:
        Explanation hyperparameters; the defaults follow the paper.
    rng:
        Random source controlling both the perturbation algorithm and the
        sampling order (pass an int for reproducible explanations).
    backend:
        Execution substrate for the model's batch prediction — a short name
        (``"serial"``/``"thread"``/``"process"``), a constructed
        :class:`~repro.runtime.backend.ExecutionBackend`, or ``None`` to
        leave the model's current substrate untouched.  Backends only decide
        *where* deterministic predictions run, so seeded explanations are
        identical across all of them.  Call :meth:`close` (or use the
        explainer as a context manager) to release a backend resolved here.
    workers:
        Worker count for a backend resolved from a name.

    Example
    -------
    >>> from repro.bb import BasicBlock
    >>> from repro.models import AnalyticalCostModel
    >>> from repro.explain import CometExplainer, ExplainerConfig
    >>> model = AnalyticalCostModel("hsw")
    >>> block = BasicBlock.from_text("add rcx, rax\\nmov rdx, rcx\\npop rbx")
    >>> explainer = CometExplainer(model, ExplainerConfig(epsilon=0.25))
    >>> explanation = explainer.explain(block)
    >>> explanation.precision >= 0.0
    True
    """

    def __init__(
        self,
        model: CostModel,
        config: Optional[ExplainerConfig] = None,
        rng: RandomSource = None,
        *,
        backend: BackendSource = None,
        workers: Optional[int] = None,
    ) -> None:
        self.model = model
        self.config = config or ExplainerConfig()
        self._rng = as_rng(rng)
        self._owns_backend = backend is not None and not isinstance(
            backend, ExecutionBackend
        )
        self._backend: Optional[ExecutionBackend] = None
        if backend is not None:
            self._backend = resolve_backend(backend, workers)
            self.model.set_backend(self._backend)

    def explain(self, block: BasicBlock, rng: RandomSource = None) -> Explanation:
        """Explain the model's prediction for ``block``."""
        generator = as_rng(rng) if rng is not None else self._rng
        with QueryCounter(self.model) as counter:
            search = AnchorSearch(self.model, block, self.config, generator)
            anchor = search.search()
        return Explanation.from_search(search, anchor, num_queries=counter.queries)

    def session(self, rng: RandomSource = None) -> "ExplanationSession":
        """An :class:`~repro.runtime.session.ExplanationSession` over this
        explainer's model, configuration and (when set) backend.

        The session adds the run-level shared state — one cache wrapper and
        one background population per block — that the one-shot API leaves
        on the floor.  Close it (it is a context manager) when the run ends.
        """
        from repro.runtime.session import ExplanationSession

        return ExplanationSession(
            self.model,
            self.config,
            # Borrow whichever backend is already driving this model (set
            # here or installed on the model directly); otherwise let the
            # session resolve the environment default.
            backend=self._backend or self.model.execution_backend,
            rng=rng if rng is not None else self._rng,
        )

    def explain_many(
        self,
        blocks: Sequence[BasicBlock],
        rng: RandomSource = None,
        *,
        shards: Union[int, str, None] = "auto",
    ) -> List[Explanation]:
        """Explain several blocks with independent random streams.

        The fleet path: the whole dataset is routed through one session, so
        every block shares the query cache, the execution backend and — for
        repeated blocks — the background population.  Per-block random
        streams are spawned exactly as they always were, so results for
        distinct blocks are bit-for-bit the explanations :meth:`explain`
        would have produced one at a time.

        ``shards`` controls block-level parallelism (``"auto"``, the default,
        = one shard per backend worker, hence sequential on the serial
        backend; ``None`` forces the sequential loop) on top of the query-level
        batching: the fleet is partitioned across the backend's workers, each
        shard runs full anchor searches, and results merge back in input
        order, seeded-deterministic (see
        :meth:`~repro.runtime.session.ExplanationSession.explain_many`).
        """
        with self.session() as session:
            return session.explain_many(blocks, rng=rng, shards=shards)

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Release a backend this explainer resolved from a name.  Idempotent."""
        if self._owns_backend and self._backend is not None:
            self.model.set_backend(None)
            self._backend.close()
        self._backend = None
        self._owns_backend = False

    def __enter__(self) -> "CometExplainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def explain_block(
    model: CostModel,
    block: BasicBlock,
    *,
    config: Optional[ExplainerConfig] = None,
    rng: RandomSource = None,
) -> Explanation:
    """One-shot convenience wrapper around :class:`CometExplainer`."""
    return CometExplainer(model, config, rng).explain(block)
