"""COMET: the cost-model explanation framework (the paper's core contribution).

Public entry point::

    from repro.explain import CometExplainer, ExplainerConfig

    explainer = CometExplainer(cost_model, ExplainerConfig(epsilon=0.5))
    explanation = explainer.explain(block)
    print(explanation.describe())

The explainer assumes only query access to the cost model, extracts the
block's candidate features, and runs an Anchors-style beam search whose
precision estimates use KL-LUCB confidence bounds over samples drawn from the
block perturbation algorithm Γ.
"""

from repro.explain.config import ExplainerConfig
from repro.explain.explanation import Explanation
from repro.explain.precision import (
    kl_bernoulli,
    bernoulli_upper_bound,
    bernoulli_lower_bound,
    confidence_beta,
    ArmStatistics,
    PrecisionEstimator,
)
from repro.explain.coverage import CoverageEstimator
from repro.explain.anchors import AnchorSearch, AnchorCandidate
from repro.explain.explainer import CometExplainer, explain_block

__all__ = [
    "ExplainerConfig",
    "Explanation",
    "kl_bernoulli",
    "bernoulli_upper_bound",
    "bernoulli_lower_bound",
    "confidence_beta",
    "ArmStatistics",
    "PrecisionEstimator",
    "CoverageEstimator",
    "AnchorSearch",
    "AnchorCandidate",
    "CometExplainer",
    "explain_block",
]
