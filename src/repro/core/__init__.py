"""Convenience re-exports of the primary public API.

``repro.core`` is the single import most downstream users need: the
explainer, its configuration, the block/feature types it consumes and the
cost models shipped with the reproduction.
"""

from repro.bb.block import BasicBlock, BlockCategory
from repro.cache.fingerprint import result_fingerprint
from repro.cache.store import CacheStats, ResultCache, TierStats
from repro.bb.features import (
    DependencyFeature,
    Feature,
    FeatureKind,
    InstructionFeature,
    NumInstructionsFeature,
    extract_features,
)
from repro.explain.config import ExplainerConfig
from repro.explain.explainer import CometExplainer, explain_block
from repro.explain.explanation import Explanation
from repro.models.analytical import AnalyticalCostModel, ground_truth_explanations
from repro.models.base import CachedCostModel, CostModel
from repro.models.ithemal import IthemalConfig, IthemalCostModel, train_ithemal
from repro.models.uica import UiCACostModel
from repro.perturb.config import PerturbationConfig
from repro.runtime.backend import (
    BackendRetryPolicy,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.runtime.checkpoint import CheckpointJournal, run_fingerprint
from repro.runtime.pool import PoolStats, SessionPool
from repro.runtime.session import ExplanationSession, SessionStats
from repro.service.client import RetryPolicy, ServiceClient
from repro.service.core import (
    ExplanationRequest,
    ExplanationService,
    RequestStatus,
    ServiceResult,
    ServiceStats,
)
from repro.service.router import HashRing, Router, route_stream, routing_key
from repro.service.scheduler import Scheduler, SchedulerStats
from repro.service.transport import SocketServer
from repro.utils.cancellation import CancelToken
from repro.utils.errors import (
    CacheError,
    CheckpointError,
    DeadlineExceededError,
    RequestCancelledError,
    ServiceTimeoutError,
)

__all__ = [
    "BasicBlock",
    "BlockCategory",
    "Feature",
    "FeatureKind",
    "InstructionFeature",
    "DependencyFeature",
    "NumInstructionsFeature",
    "extract_features",
    "ExplainerConfig",
    "CometExplainer",
    "explain_block",
    "Explanation",
    "AnalyticalCostModel",
    "ground_truth_explanations",
    "CostModel",
    "CachedCostModel",
    "IthemalCostModel",
    "IthemalConfig",
    "train_ithemal",
    "UiCACostModel",
    "PerturbationConfig",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "BackendRetryPolicy",
    "resolve_backend",
    "ExplanationSession",
    "SessionStats",
    "CheckpointJournal",
    "run_fingerprint",
    "CheckpointError",
    "CancelToken",
    "ServiceTimeoutError",
    "RequestCancelledError",
    "DeadlineExceededError",
    "RetryPolicy",
    "ExplanationService",
    "ExplanationRequest",
    "ServiceResult",
    "ServiceStats",
    "RequestStatus",
    "ServiceClient",
    "SocketServer",
    "Scheduler",
    "SchedulerStats",
    "SessionPool",
    "PoolStats",
    "ResultCache",
    "CacheStats",
    "TierStats",
    "CacheError",
    "result_fingerprint",
    "HashRing",
    "Router",
    "route_stream",
    "routing_key",
]
