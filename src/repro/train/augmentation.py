"""Turning coarse-explanation feedback into new training examples.

When COMET reports that the model's prediction for a block rests on the
instruction count alone, the most direct corrective signal is data in which
that count is *not* predictive: perturbations of the block that keep every
instruction and every data dependency (the fine-grained features) but add or
remove filler instructions, labelled with the hardware oracle's throughput.
Training on the original block together with these variants forces the model
to attend to the content of the block rather than its length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.bb.block import BasicBlock
from repro.bb.features import extract_features, FeatureKind
from repro.data.oracle import HardwareOracle
from repro.perturb.algorithm import BlockPerturber
from repro.perturb.config import PerturbationConfig
from repro.train.feedback import BlockFeedback
from repro.utils.rng import RandomSource, as_rng


@dataclass(frozen=True)
class AugmentationConfig:
    """Knobs of the feedback-driven augmentation.

    Attributes
    ----------
    variants_per_block:
        Number of perturbed variants generated per coarse block.
    preserve_fine_grained:
        Whether the variants must keep the block's instructions and data
        dependencies (the recommended setting: only the count may drift).
    perturbation:
        Configuration of the underlying perturbation algorithm Γ.  The
        default raises the deletion probability so the instruction count
        actually changes often.
    max_attempts_per_variant:
        Perturbation attempts per requested variant before giving up (Γ can
        return the original block when every attempt fails validation).
    """

    variants_per_block: int = 2
    preserve_fine_grained: bool = True
    perturbation: PerturbationConfig = PerturbationConfig(p_delete=0.6)
    max_attempts_per_variant: int = 4

    def __post_init__(self) -> None:
        if self.variants_per_block < 0:
            raise ValueError("variants_per_block must be non-negative")
        if self.max_attempts_per_variant < 1:
            raise ValueError("max_attempts_per_variant must be at least 1")


def _fine_grained_features(block: BasicBlock):
    return tuple(
        feature
        for feature in extract_features(block)
        if feature.kind is not FeatureKind.NUM_INSTRUCTIONS
    )


def augment_coarse_blocks(
    feedback: Sequence[BlockFeedback],
    oracle: HardwareOracle,
    *,
    config: Optional[AugmentationConfig] = None,
    rng: RandomSource = 0,
) -> Tuple[List[BasicBlock], List[float]]:
    """Build augmented training examples from one feedback round.

    Only the blocks whose feedback is coarse contribute variants.  Each
    variant differs from its source block (and from the other variants of the
    same block); variants that collapse back onto the source are discarded,
    so the returned lists may be shorter than
    ``len(coarse blocks) * variants_per_block``.
    """
    config = config or AugmentationConfig()
    generator = as_rng(rng)

    blocks: List[BasicBlock] = []
    labels: List[float] = []
    for entry in feedback:
        if not entry.is_coarse:
            continue
        source = entry.block
        preserved = (
            _fine_grained_features(source) if config.preserve_fine_grained else ()
        )
        perturber = BlockPerturber(source, config.perturbation, rng=generator)
        seen = {source.key()}
        for _ in range(config.variants_per_block):
            variant: Optional[BasicBlock] = None
            for _ in range(config.max_attempts_per_variant):
                candidate = perturber.perturb(preserved, rng=generator)
                if candidate.key() not in seen:
                    variant = candidate
                    break
            if variant is None:
                continue
            seen.add(variant.key())
            blocks.append(variant)
            labels.append(oracle.measure(variant))
    return blocks, labels
