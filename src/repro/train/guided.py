"""The explanation-guided training loop for the neural cost model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.bb.block import BasicBlock
from repro.data.oracle import HardwareOracle
from repro.explain.config import ExplainerConfig
from repro.models.base import CachedCostModel
from repro.models.ithemal import IthemalConfig, IthemalCostModel
from repro.train.augmentation import AugmentationConfig, augment_coarse_blocks
from repro.train.feedback import FeedbackSummary, GranularityFeedback
from repro.utils.rng import RandomSource, as_rng
from repro.utils.tables import render_table


@dataclass(frozen=True)
class GuidedTrainingConfig:
    """Knobs of the explanation-guided training loop.

    Attributes
    ----------
    rounds:
        Number of feedback rounds after the initial training phase.
    initial_epochs:
        Training epochs before the first feedback round.
    epochs_per_round:
        Training epochs after each feedback round (over the original data
        plus every augmented example collected so far).
    feedback_sample:
        Number of training blocks explained per feedback round.
    explainer:
        COMET configuration used during feedback (a reduced sampling budget
        keeps the loop affordable; the explanations only need to detect
        coarse reliance, not certify precision tightly).
    augmentation:
        How feedback is converted into new training examples.
    seed:
        Random source for feedback sampling and augmentation.
    """

    rounds: int = 2
    initial_epochs: int = 2
    epochs_per_round: int = 1
    feedback_sample: int = 8
    explainer: ExplainerConfig = ExplainerConfig(
        coverage_samples=80,
        max_precision_samples=50,
        min_precision_samples=15,
        batch_size=10,
    )
    augmentation: AugmentationConfig = AugmentationConfig()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rounds < 0:
            raise ValueError("rounds must be non-negative")
        if self.initial_epochs < 0 or self.epochs_per_round < 0:
            raise ValueError("epoch counts must be non-negative")
        if self.feedback_sample < 1:
            raise ValueError("feedback_sample must be at least 1")


@dataclass(frozen=True)
class RoundRecord:
    """What happened in one feedback round."""

    round_index: int
    feedback: FeedbackSummary
    examples_added: int
    training_set_size: int
    validation_mape: float


@dataclass
class GuidedTrainingResult:
    """Final model plus the per-round history of the guided run."""

    model: IthemalCostModel
    rounds: List[RoundRecord] = field(default_factory=list)

    @property
    def final_pct_coarse(self) -> float:
        """Coarse-explanation share measured in the last feedback round."""
        if not self.rounds:
            return float("nan")
        return self.rounds[-1].feedback.pct_coarse

    def render(self) -> str:
        """Text table of the guided-training history."""
        rows = [
            [
                record.round_index,
                record.feedback.pct_coarse,
                record.feedback.pct_fine_grained,
                record.examples_added,
                record.training_set_size,
                record.validation_mape,
            ]
            for record in self.rounds
        ]
        return render_table(
            [
                "Round",
                "% coarse expl.",
                "% fine expl.",
                "Examples added",
                "Training set",
                "Val. MAPE (%)",
            ],
            rows,
            title="Explanation-guided training history",
            precision=1,
        )


class ExplanationGuidedTrainer:
    """Train the neural cost model with COMET feedback between rounds."""

    def __init__(
        self,
        microarch="hsw",
        *,
        ithemal_config: Optional[IthemalConfig] = None,
        guided_config: Optional[GuidedTrainingConfig] = None,
        oracle: Optional[HardwareOracle] = None,
    ) -> None:
        self.microarch = microarch
        self.ithemal_config = ithemal_config or IthemalConfig()
        self.config = guided_config or GuidedTrainingConfig()
        self.oracle = oracle or HardwareOracle(microarch)

    def train(
        self,
        blocks: Sequence[BasicBlock],
        throughputs: Sequence[float],
        *,
        validation_blocks: Optional[Sequence[BasicBlock]] = None,
        validation_throughputs: Optional[Sequence[float]] = None,
        rng: RandomSource = None,
    ) -> GuidedTrainingResult:
        """Run the guided loop and return the trained model plus its history.

        ``validation_blocks``/``validation_throughputs`` are only used for
        reporting the per-round MAPE; when omitted the training set itself is
        used (which is what the quick examples do).
        """
        if len(blocks) != len(throughputs):
            raise ValueError("blocks and throughputs must have the same length")
        if len(blocks) == 0:
            raise ValueError("cannot train on an empty dataset")
        generator = as_rng(rng if rng is not None else self.config.seed)

        validation_blocks = list(validation_blocks or blocks)
        validation_throughputs = [
            float(v) for v in (validation_throughputs or throughputs)
        ]

        model = IthemalCostModel(self.microarch, self.ithemal_config, rng=generator)
        model.train(blocks, throughputs, epochs=self.config.initial_epochs, rng=generator)

        feedback_collector = GranularityFeedback(
            self.config.explainer, seed=self.config.seed
        )

        train_blocks: List[BasicBlock] = list(blocks)
        train_labels: List[float] = [float(t) for t in throughputs]
        records: List[RoundRecord] = []

        for round_index in range(1, self.config.rounds + 1):
            # Explanations query the model heavily; a cache makes the round
            # cost proportional to distinct perturbations, not raw queries.
            cached = CachedCostModel(model)
            feedback = feedback_collector.collect(
                cached,
                blocks,
                sample_size=self.config.feedback_sample,
                rng=generator,
            )
            summary = GranularityFeedback.summarize(feedback)

            new_blocks, new_labels = augment_coarse_blocks(
                feedback,
                self.oracle,
                config=self.config.augmentation,
                rng=generator,
            )
            train_blocks.extend(new_blocks)
            train_labels.extend(new_labels)

            if self.config.epochs_per_round > 0:
                model.train(
                    train_blocks,
                    train_labels,
                    epochs=self.config.epochs_per_round,
                    rng=generator,
                )

            records.append(
                RoundRecord(
                    round_index=round_index,
                    feedback=summary,
                    examples_added=len(new_blocks),
                    training_set_size=len(train_blocks),
                    validation_mape=model.evaluate_mape(
                        validation_blocks, validation_throughputs
                    ),
                )
            )

        return GuidedTrainingResult(model=model, rounds=records)
