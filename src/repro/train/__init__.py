"""Explanation-guided neural cost-model training (paper Section 7).

The paper's discussion proposes that "COMET's feedback can be leveraged to
update the model parameters during training to have the predictions rely on
finer-grained features".  This subpackage implements that feedback loop for
the NumPy Ithemal stand-in:

* :class:`GranularityFeedback` explains a sample of training blocks under the
  current model and reports which of them the model treats as coarse-grained
  (explanation = instruction count only),
* :mod:`repro.train.augmentation` turns that feedback into new training
  examples: perturbations of the coarse blocks that keep their instructions
  and data dependencies but change the instruction count, labelled by the
  hardware oracle, so the count feature stops being predictive for them,
* :class:`ExplanationGuidedTrainer` alternates training epochs with feedback
  rounds and records how the explanation granularity of the model evolves.

The ``explanation_guided_training.py`` example compares a guided run against
plain training with the same total epoch budget.
"""

from repro.train.feedback import BlockFeedback, FeedbackSummary, GranularityFeedback
from repro.train.augmentation import AugmentationConfig, augment_coarse_blocks
from repro.train.guided import (
    ExplanationGuidedTrainer,
    GuidedTrainingConfig,
    GuidedTrainingResult,
    RoundRecord,
)

__all__ = [
    "BlockFeedback",
    "FeedbackSummary",
    "GranularityFeedback",
    "AugmentationConfig",
    "augment_coarse_blocks",
    "ExplanationGuidedTrainer",
    "GuidedTrainingConfig",
    "GuidedTrainingResult",
    "RoundRecord",
]
