"""Collecting COMET feedback on a model under training."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bb.block import BasicBlock
from repro.bb.features import FeatureKind
from repro.explain.config import ExplainerConfig
from repro.explain.explainer import CometExplainer
from repro.explain.explanation import Explanation
from repro.models.base import CostModel
from repro.utils.rng import RandomSource, as_rng, spawn_rngs


@dataclass(frozen=True)
class BlockFeedback:
    """COMET's verdict on how a model treats one training block."""

    block: BasicBlock
    explanation: Explanation

    @property
    def is_coarse(self) -> bool:
        """The explanation relies on the instruction count and nothing finer."""
        return (
            self.explanation.contains_kind(FeatureKind.NUM_INSTRUCTIONS)
            and not self.explanation.is_fine_grained
        )

    @property
    def is_fine_grained(self) -> bool:
        """The explanation names at least one instruction or dependency."""
        return self.explanation.is_fine_grained

    @property
    def is_empty(self) -> bool:
        """The explanation is empty (the model is insensitive to perturbations)."""
        return len(self.explanation.features) == 0


@dataclass(frozen=True)
class FeedbackSummary:
    """Aggregate view of one feedback round."""

    total: int
    coarse: int
    fine_grained: int
    empty: int

    @property
    def pct_coarse(self) -> float:
        """Percentage of explained blocks with a coarse-only explanation."""
        return 100.0 * self.coarse / self.total if self.total else float("nan")

    @property
    def pct_fine_grained(self) -> float:
        """Percentage of explained blocks with a fine-grained explanation."""
        return 100.0 * self.fine_grained / self.total if self.total else float("nan")


class GranularityFeedback:
    """Explains a sample of blocks and reports the model's feature reliance."""

    def __init__(
        self,
        config: Optional[ExplainerConfig] = None,
        *,
        seed: RandomSource = 0,
    ) -> None:
        self.config = config or ExplainerConfig()
        self.seed = seed

    def collect(
        self,
        model: CostModel,
        blocks: Sequence[BasicBlock],
        *,
        sample_size: Optional[int] = None,
        rng: RandomSource = None,
    ) -> List[BlockFeedback]:
        """Explain up to ``sample_size`` of ``blocks`` under ``model``.

        The sample is drawn without replacement; passing ``sample_size=None``
        (or a value at least ``len(blocks)``) explains every block.
        """
        blocks = list(blocks)
        if not blocks:
            return []
        generator = as_rng(rng if rng is not None else self.seed)
        if sample_size is not None and sample_size < len(blocks):
            if sample_size <= 0:
                raise ValueError("sample_size must be positive")
            indices = generator.choice(len(blocks), size=sample_size, replace=False)
            blocks = [blocks[int(i)] for i in indices]

        explainer = CometExplainer(model, self.config, rng=generator)
        feedback: List[BlockFeedback] = []
        for block, stream in zip(blocks, spawn_rngs(self.seed, len(blocks))):
            explanation = explainer.explain(block, rng=stream)
            feedback.append(BlockFeedback(block=block, explanation=explanation))
        return feedback

    @staticmethod
    def summarize(feedback: Sequence[BlockFeedback]) -> FeedbackSummary:
        """Aggregate a feedback round into counts and percentages."""
        return FeedbackSummary(
            total=len(feedback),
            coarse=sum(1 for f in feedback if f.is_coarse),
            fine_grained=sum(1 for f in feedback if f.is_fine_grained),
            empty=sum(1 for f in feedback if f.is_empty),
        )
