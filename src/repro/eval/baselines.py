"""The random and fixed explanation baselines of Section 6.

Both baselines are calibrated on the *ground-truth explanations of the whole
explanation test set* (they get to peek at statistics COMET never sees), yet
COMET still outperforms them by a wide margin in Table 2 — that is the point
of the comparison.

* **Random** — one feature of the block, whose *type* is drawn from the
  empirical distribution of feature types over all ground-truth explanations
  and whose identity is uniform among the block's features of that type.
* **Fixed** — the most frequent feature type in the ground-truth set is
  computed once; the baseline always answers with the first feature of that
  type in the block (falling back to the first feature of any type).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.bb.block import BasicBlock
from repro.bb.features import Feature, FeatureKind, extract_features
from repro.models.analytical import AnalyticalCostModel, ground_truth_explanations
from repro.utils.rng import RandomSource, as_rng, choice


def ground_truth_type_frequencies(
    blocks: Sequence[BasicBlock], model: AnalyticalCostModel
) -> Dict[FeatureKind, float]:
    """Empirical distribution of feature kinds over all ground-truth features."""
    counts: Counter = Counter()
    for block in blocks:
        for feature in ground_truth_explanations(block, model):
            counts[feature.kind] += 1
    total = sum(counts.values())
    if total == 0:
        return {kind: 1.0 / len(FeatureKind) for kind in FeatureKind}
    return {kind: counts.get(kind, 0) / total for kind in FeatureKind}


class RandomExplanationBaseline:
    """Type-frequency-weighted random explanations."""

    def __init__(
        self,
        blocks: Sequence[BasicBlock],
        model: AnalyticalCostModel,
        rng: RandomSource = None,
    ) -> None:
        self.frequencies = ground_truth_type_frequencies(blocks, model)
        self._rng = as_rng(rng)

    def explain(self, block: BasicBlock, rng: RandomSource = None) -> List[Feature]:
        """A random explanation for ``block`` (always exactly one feature)."""
        generator = as_rng(rng) if rng is not None else self._rng
        features = extract_features(block)
        kinds = list(self.frequencies)
        weights = np.array([self.frequencies[k] for k in kinds], dtype=float)
        if weights.sum() <= 0:
            weights = np.ones(len(kinds))
        weights = weights / weights.sum()
        for _ in range(10):
            kind = kinds[int(generator.choice(len(kinds), p=weights))]
            of_kind = [f for f in features if f.kind is kind]
            if of_kind:
                return [choice(generator, of_kind)]
        return [choice(generator, features)]


class FixedExplanationBaseline:
    """Always answer with the first feature of the globally dominant type."""

    def __init__(
        self, blocks: Sequence[BasicBlock], model: AnalyticalCostModel
    ) -> None:
        frequencies = ground_truth_type_frequencies(blocks, model)
        self.dominant_kind: FeatureKind = max(frequencies, key=lambda k: frequencies[k])

    def explain(self, block: BasicBlock) -> List[Feature]:
        """The fixed explanation for ``block`` (deterministic)."""
        features = extract_features(block)
        for feature in features:
            if feature.kind is self.dominant_kind:
                return [feature]
        return [features[0]]
