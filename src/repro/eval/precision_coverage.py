"""Table 3: average precision and coverage of COMET's explanations.

The state-of-the-art cost models (the neural Ithemal stand-in and the
simulation-based uiCA stand-in) have no ground-truth explanations, so — as in
the paper — explanation quality is reported through the empirical precision
(faithfulness proxy) and coverage (generalisability proxy) of the returned
feature sets, averaged over the explanation test set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bb.block import BasicBlock
from repro.eval.context import EvaluationContext
from repro.eval.metrics import summarize_mean_std
from repro.explain.explanation import Explanation
from repro.runtime.backend import BackendSource
from repro.runtime.session import ExplanationSession
from repro.utils.tables import format_mean_std, render_table


@dataclass
class PrecisionCoverageRow:
    """One row of Table 3: a (model, micro-architecture) pair."""

    model_label: str
    microarch: str
    precision_mean: float
    precision_std: float
    coverage_mean: float
    coverage_std: float
    explanations: List[Explanation]

    def as_cells(self) -> List[object]:
        return [
            f"{self.model_label} ({self.microarch.upper()})",
            format_mean_std(self.precision_mean, self.precision_std),
            format_mean_std(self.coverage_mean, self.coverage_std),
        ]


@dataclass
class PrecisionCoverageResult:
    """All rows of Table 3."""

    rows: List[PrecisionCoverageRow]
    blocks_evaluated: int

    def render(self) -> str:
        return render_table(
            ["Model", "Av. Precision", "Av. Coverage"],
            [row.as_cells() for row in self.rows],
            title=f"Table 3: average precision and coverage of COMET's explanations "
            f"({self.blocks_evaluated} blocks)",
        )


def explain_blocks(
    model,
    blocks: Sequence[BasicBlock],
    config,
    seed,
    *,
    backend: BackendSource = None,
) -> List[Explanation]:
    """Explain every block through one session (shared helper).

    The session spawns the same independent per-block random streams the
    harness always used; it adds the shared cache wrapper, the per-block
    background populations and — when ``backend`` (or ``REPRO_BACKEND``)
    says so — process/thread fan-out of the model queries.
    """
    with ExplanationSession(model, config, backend=backend) as session:
        return session.explain_many(blocks, rng=seed)


def run_precision_coverage_experiment(
    context: Optional[EvaluationContext] = None,
    *,
    models: Sequence[str] = ("ithemal", "uica"),
    blocks: Optional[Sequence[BasicBlock]] = None,
    seed: int = 11,
    backend: BackendSource = None,
) -> PrecisionCoverageResult:
    """Run the Table 3 experiment for the given models and micro-architectures."""
    context = context or EvaluationContext.shared()
    settings = context.settings
    blocks = list(blocks) if blocks is not None else context.test_blocks()

    labels = {"ithemal": "Ithemal (I)", "uica": "uiCA (U)"}
    rows: List[PrecisionCoverageRow] = []
    for model_name in models:
        for microarch in settings.microarchs:
            model = context.model(model_name, microarch)
            explanations = explain_blocks(
                model, blocks, settings.explainer_config, seed, backend=backend
            )
            precision_mean, precision_std = summarize_mean_std(
                [e.precision for e in explanations]
            )
            coverage_mean, coverage_std = summarize_mean_std(
                [e.coverage for e in explanations]
            )
            rows.append(
                PrecisionCoverageRow(
                    model_label=labels.get(model_name, model_name),
                    microarch=microarch,
                    precision_mean=precision_mean,
                    precision_std=precision_std,
                    coverage_mean=coverage_mean,
                    coverage_std=coverage_std,
                    explanations=explanations,
                )
            )
    return PrecisionCoverageResult(rows=rows, blocks_evaluated=len(blocks))
