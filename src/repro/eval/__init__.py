"""Evaluation harness: one driver per table/figure of the paper.

Every experiment returns plain data structures (lists of rows / dicts of
series) plus a ``render()``-style text form, so the benchmark harness under
``benchmarks/`` can print the same rows the paper reports while tests can
assert on the underlying numbers.
"""

from repro.eval.metrics import (
    mape,
    mean_absolute_percentage_error,
    explanation_accuracy,
    summarize_mean_std,
)
from repro.eval.baselines import (
    RandomExplanationBaseline,
    FixedExplanationBaseline,
    ground_truth_type_frequencies,
)
from repro.eval.context import EvaluationContext, EvaluationSettings
from repro.eval.accuracy import AccuracyResult, run_accuracy_experiment
from repro.eval.precision_coverage import (
    PrecisionCoverageRow,
    run_precision_coverage_experiment,
)
from repro.eval.error_correlation import (
    GranularityResult,
    run_error_granularity_experiment,
    run_partitioned_granularity_experiment,
)
from repro.eval.ablations import (
    sweep_precision_threshold,
    sweep_deletion_probability,
    sweep_dependency_retention,
    compare_replacement_schemes,
)
from repro.eval.case_studies import CASE_STUDY_BLOCKS, run_case_studies

__all__ = [
    "mape",
    "mean_absolute_percentage_error",
    "explanation_accuracy",
    "summarize_mean_std",
    "RandomExplanationBaseline",
    "FixedExplanationBaseline",
    "ground_truth_type_frequencies",
    "EvaluationContext",
    "EvaluationSettings",
    "AccuracyResult",
    "run_accuracy_experiment",
    "PrecisionCoverageRow",
    "run_precision_coverage_experiment",
    "GranularityResult",
    "run_error_granularity_experiment",
    "run_partitioned_granularity_experiment",
    "sweep_precision_threshold",
    "sweep_deletion_probability",
    "sweep_dependency_retention",
    "compare_replacement_schemes",
    "CASE_STUDY_BLOCKS",
    "run_case_studies",
]
