"""Figures 2–4: prediction error versus explanation granularity.

The paper's utility study (Section 6.3) plots, for each cost model and
micro-architecture, the model's MAPE next to the percentage of COMET
explanations containing (a) the number-of-instructions feature η, (b) a
specific-instruction feature and (c) a data-dependency feature.  The paper's
hypothesis — confirmed across Figures 2, 3 (partition by source) and 4
(partition by category) — is that lower-error models rely on finer-grained
features.  These drivers compute the same quantities on the synthetic
substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bb.features import FeatureKind
from repro.data.bhive import BHiveDataset
from repro.data.splits import category_order, partition_by_category, partition_by_source
from repro.eval.context import EvaluationContext
from repro.eval.metrics import feature_kind_percentages, mean_absolute_percentage_error
from repro.eval.precision_coverage import explain_blocks
from repro.utils.tables import render_table


@dataclass
class GranularityResult:
    """MAPE and explanation-composition percentages for one model/uarch pair."""

    model_label: str
    microarch: str
    mape: float
    pct_num_instructions: float
    pct_instructions: float
    pct_dependencies: float
    blocks_evaluated: int

    @property
    def pct_fine_grained(self) -> float:
        """Share of explanations containing at least one fine-grained feature."""
        return max(self.pct_instructions, self.pct_dependencies)

    def as_cells(self) -> List[object]:
        return [
            f"{self.model_label} ({self.microarch.upper()})",
            self.mape,
            self.pct_num_instructions,
            self.pct_instructions,
            self.pct_dependencies,
        ]


def _granularity_for(
    context: EvaluationContext,
    dataset: BHiveDataset,
    model_name: str,
    microarch: str,
    seed: int,
) -> GranularityResult:
    settings = context.settings
    model = context.model(model_name, microarch)
    blocks = dataset.blocks()
    targets = dataset.throughputs(microarch)
    predictions = [model.predict(block) for block in blocks]
    error = mean_absolute_percentage_error(predictions, targets)

    explanations = explain_blocks(model, blocks, settings.explainer_config, seed)
    percentages = feature_kind_percentages(explanations)
    labels = {"ithemal": "Ithemal", "uica": "uiCA"}
    return GranularityResult(
        model_label=labels.get(model_name, model_name),
        microarch=microarch,
        mape=error,
        pct_num_instructions=percentages[FeatureKind.NUM_INSTRUCTIONS.value],
        pct_instructions=percentages[FeatureKind.INSTRUCTION.value],
        pct_dependencies=percentages[FeatureKind.DEPENDENCY.value],
        blocks_evaluated=len(blocks),
    )


def render_granularity_table(title: str, results: Sequence[GranularityResult]) -> str:
    """Text rendering shared by the Figure 2/3/4 benchmarks."""
    return render_table(
        ["Model", "MAPE (%)", "% expl. with η", "% expl. with inst", "% expl. with δ"],
        [result.as_cells() for result in results],
        title=title,
        precision=1,
    )


def run_error_granularity_experiment(
    context: Optional[EvaluationContext] = None,
    *,
    models: Sequence[str] = ("ithemal", "uica"),
    microarchs: Optional[Sequence[str]] = None,
    dataset: Optional[BHiveDataset] = None,
    seed: int = 21,
) -> List[GranularityResult]:
    """Figure 2: error vs granularity over the explanation test set."""
    context = context or EvaluationContext.shared()
    microarchs = tuple(microarchs or context.settings.microarchs)
    dataset = dataset if dataset is not None else context.test_set
    results = []
    for microarch in microarchs:
        for model_name in models:
            results.append(
                _granularity_for(context, dataset, model_name, microarch, seed)
            )
    return results


def run_partitioned_granularity_experiment(
    context: Optional[EvaluationContext] = None,
    *,
    partition: str = "source",
    models: Sequence[str] = ("ithemal", "uica"),
    microarch: str = "hsw",
    blocks_per_partition: int = 0,
    seed: int = 22,
) -> Dict[str, List[GranularityResult]]:
    """Figures 3 and 4: the same study on BHive partitions.

    ``partition`` is ``"source"`` (Figure 3: Clang / OpenBLAS) or
    ``"category"`` (Figure 4: Load / Store / ...).  ``blocks_per_partition``
    caps each partition's size (the paper uses 100 per source and 50 per
    category); 0 means "use everything available".
    """
    context = context or EvaluationContext.shared()
    settings = context.settings
    base = context.dataset.filter_by_size(
        settings.min_instructions, settings.max_instructions
    )
    if partition == "source":
        partitions = {
            name: subset
            for name, subset in partition_by_source(base).items()
            if name in ("clang", "openblas")
        }
    elif partition == "category":
        partitions = partition_by_category(base)
        ordered = {name: partitions[name] for name in category_order() if name in partitions}
        partitions = ordered
    else:
        raise ValueError("partition must be 'source' or 'category'")

    out: Dict[str, List[GranularityResult]] = {}
    for name, subset in partitions.items():
        if len(subset) == 0:
            continue
        if blocks_per_partition and len(subset) > blocks_per_partition:
            subset = subset.sample(blocks_per_partition, rng=seed)
        out[name] = [
            _granularity_for(context, subset, model_name, microarch, seed)
            for model_name in models
        ]
    return out
