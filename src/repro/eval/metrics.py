"""Metrics used throughout the evaluation."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.bb.features import Feature


def mean_absolute_percentage_error(
    predictions: Sequence[float], targets: Sequence[float]
) -> float:
    """MAPE in percent (the error metric of Figures 2–4)."""
    predictions = np.asarray(list(predictions), dtype=float)
    targets = np.asarray(list(targets), dtype=float)
    if predictions.shape != targets.shape:
        raise ValueError("predictions and targets must have the same length")
    if predictions.size == 0:
        return float("nan")
    safe_targets = np.maximum(np.abs(targets), 1e-9)
    return 100.0 * float(np.mean(np.abs(predictions - targets) / safe_targets))


#: Short alias used by the experiment drivers.
mape = mean_absolute_percentage_error


def explanation_accuracy(
    explanation_features: Iterable[Feature], ground_truth: Iterable[Feature]
) -> bool:
    """Accuracy criterion of Section 6.

    An explanation is accurate if it identifies *at least one* ground-truth
    feature and contains *nothing outside* the ground-truth set.  An empty
    explanation is therefore inaccurate (it identifies nothing).
    """
    explanation_set = set(explanation_features)
    truth_set = set(ground_truth)
    if not explanation_set:
        return False
    return bool(explanation_set & truth_set) and explanation_set <= truth_set


def accuracy_rate(outcomes: Sequence[bool]) -> float:
    """Fraction of accurate explanations, in percent."""
    if len(outcomes) == 0:
        return float("nan")
    return 100.0 * float(np.mean([bool(o) for o in outcomes]))


def summarize_mean_std(values: Sequence[float]) -> Tuple[float, float]:
    """Mean and standard deviation (population std, matching the paper's ±)."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return float("nan"), float("nan")
    return float(array.mean()), float(array.std())


def feature_kind_percentages(explanations) -> Dict[str, float]:
    """Percentage of explanations containing each feature kind (Section 6.3)."""
    from repro.bb.features import FeatureKind

    totals = {kind: 0 for kind in FeatureKind}
    count = 0
    for explanation in explanations:
        count += 1
        for kind in explanation.feature_kinds:
            totals[kind] += 1
    if count == 0:
        return {kind.value: float("nan") for kind in FeatureKind}
    return {kind.value: 100.0 * totals[kind] / count for kind in FeatureKind}
