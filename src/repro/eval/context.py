"""Shared experiment context: dataset, oracle labels, trained models.

Every table/figure of the paper is evaluated over the same BHive-style data
and the same trained cost models, so building them once and sharing them
across experiment drivers (and across the benchmark files of one pytest
session) saves minutes of redundant work.  The context is deliberately
explicit about its knobs so the full paper-scale run and the quick CI-scale
run are the same code with different :class:`EvaluationSettings`.

Environment overrides (picked up by :meth:`EvaluationSettings.from_env`):

* ``REPRO_EVAL_BLOCKS`` — number of blocks in the explanation test set,
* ``REPRO_EVAL_DATASET`` — size of the synthetic dataset,
* ``REPRO_EVAL_SEEDS`` — number of seeds per experiment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bb.block import BasicBlock
from repro.data.bhive import BHiveDataset
from repro.data.splits import explanation_test_set, train_test_split
from repro.explain.config import ExplainerConfig
from repro.models.analytical import AnalyticalCostModel
from repro.models.base import CachedCostModel, CostModel
from repro.models.ithemal import IthemalConfig, train_ithemal
from repro.models.uica import UiCACostModel
from repro.uarch.microarch import get_microarch
from repro.utils.rng import RandomSource


@dataclass(frozen=True)
class EvaluationSettings:
    """Scale and hyperparameters of an evaluation run.

    The paper-scale values are ``dataset_size≈3000``, ``test_set_size=200``,
    ``seeds=5``; the defaults here are sized so the whole benchmark suite
    finishes in minutes on a laptop while preserving every qualitative trend.
    """

    dataset_size: int = 400
    test_set_size: int = 16
    seeds: int = 2
    min_instructions: int = 4
    max_instructions: int = 10
    microarchs: Tuple[str, ...] = ("hsw", "skl")
    dataset_seed: int = 7
    ithemal_config: IthemalConfig = IthemalConfig()
    explainer_config: ExplainerConfig = ExplainerConfig()
    #: Acceptance-ball radius used against the crude model.  The paper sets a
    #: quarter cost unit (its smallest possible prediction change); we use a
    #: value strictly below that quantum so that a one-instruction change in
    #: the front-end bound counts as a *different* prediction.
    crude_epsilon: float = 0.2

    @classmethod
    def from_env(cls, **overrides) -> "EvaluationSettings":
        """Settings with ``REPRO_EVAL_*`` environment overrides applied."""
        env = {}
        if "REPRO_EVAL_BLOCKS" in os.environ:
            env["test_set_size"] = int(os.environ["REPRO_EVAL_BLOCKS"])
        if "REPRO_EVAL_DATASET" in os.environ:
            env["dataset_size"] = int(os.environ["REPRO_EVAL_DATASET"])
        if "REPRO_EVAL_SEEDS" in os.environ:
            env["seeds"] = int(os.environ["REPRO_EVAL_SEEDS"])
        env.update(overrides)
        return cls(**env)

    def scaled(self, **overrides) -> "EvaluationSettings":
        """A copy with some fields replaced."""
        return replace(self, **overrides)

    def crude_explainer_config(self) -> ExplainerConfig:
        """Explainer config used against the crude model (Appendix E: ε=0.25)."""
        return self.explainer_config.with_overrides(
            epsilon=self.crude_epsilon, relative_epsilon=0.0
        )


class EvaluationContext:
    """Lazily builds and caches the dataset and cost models for experiments."""

    _shared: Dict[Tuple, "EvaluationContext"] = {}

    def __init__(self, settings: Optional[EvaluationSettings] = None) -> None:
        self.settings = settings or EvaluationSettings.from_env()
        self._dataset: Optional[BHiveDataset] = None
        self._test_set: Optional[BHiveDataset] = None
        self._models: Dict[Tuple[str, str], CostModel] = {}

    # ------------------------------------------------------------- sharing

    @classmethod
    def shared(cls, settings: Optional[EvaluationSettings] = None) -> "EvaluationContext":
        """A process-wide shared context keyed by its settings.

        Benchmarks for different tables run in the same pytest session; the
        shared context lets them reuse the dataset and the trained neural
        models instead of rebuilding them per file.
        """
        settings = settings or EvaluationSettings.from_env()
        key = (
            settings.dataset_size,
            settings.test_set_size,
            settings.seeds,
            settings.microarchs,
            settings.dataset_seed,
        )
        if key not in cls._shared:
            cls._shared[key] = cls(settings)
        return cls._shared[key]

    # -------------------------------------------------------------- dataset

    @property
    def dataset(self) -> BHiveDataset:
        """The synthetic BHive-style dataset (built on first access)."""
        if self._dataset is None:
            self._dataset = BHiveDataset.synthesize(
                self.settings.dataset_size,
                min_instructions=2,
                max_instructions=self.settings.max_instructions + 2,
                microarchs=self.settings.microarchs,
                rng=self.settings.dataset_seed,
            )
        return self._dataset

    @property
    def test_set(self) -> BHiveDataset:
        """The explanation test set (Section 6: blocks of 4–10 instructions)."""
        if self._test_set is None:
            self._test_set = explanation_test_set(
                self.dataset,
                self.settings.test_set_size,
                min_instructions=self.settings.min_instructions,
                max_instructions=self.settings.max_instructions,
                rng=self.settings.dataset_seed + 1,
            )
        return self._test_set

    def test_blocks(self) -> List[BasicBlock]:
        """Blocks of the explanation test set."""
        return self.test_set.blocks()

    # --------------------------------------------------------------- models

    def crude_model(self, microarch: str) -> AnalyticalCostModel:
        """The crude analytical model ``C`` for one micro-architecture."""
        key = ("crude", get_microarch(microarch).short_name)
        if key not in self._models:
            self._models[key] = AnalyticalCostModel(microarch)
        return self._models[key]  # type: ignore[return-value]

    def uica_model(self, microarch: str) -> CostModel:
        """The uiCA-style simulation model (cached + memoised)."""
        key = ("uica", get_microarch(microarch).short_name)
        if key not in self._models:
            self._models[key] = CachedCostModel(UiCACostModel(microarch))
        return self._models[key]

    def ithemal_model(self, microarch: str) -> CostModel:
        """The trained neural model for one micro-architecture (cached)."""
        key = ("ithemal", get_microarch(microarch).short_name)
        if key not in self._models:
            train, _ = train_test_split(self.dataset, 0.15, rng=3)
            model = train_ithemal(
                train.blocks(),
                train.throughputs(microarch),
                microarch,
                self.settings.ithemal_config,
            )
            self._models[key] = CachedCostModel(model)
        return self._models[key]

    def model(self, name: str, microarch: str) -> CostModel:
        """Resolve a model by short name (``crude``/``uica``/``ithemal``)."""
        name = name.lower()
        if name in ("crude", "c", "analytical"):
            return self.crude_model(microarch)
        if name == "uica":
            return self.uica_model(microarch)
        if name == "ithemal":
            return self.ithemal_model(microarch)
        raise ValueError(f"unknown model name {name!r}")
