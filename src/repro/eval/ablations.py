"""Appendix E ablations (Figures 5–8): sensitivity of COMET to its knobs.

Each sweep scores explanation accuracy (and, for Figure 7, precision) over
the crude analytical model, exactly like the accuracy experiment, while one
hyperparameter varies:

* Figure 5 — the precision threshold ``1 − δ``,
* Figure 6 — the instruction-deletion probability ``p_del``,
* Figure 7 — the explicit data-dependency retention probability,
* Figure 8 — opcode-only vs whole-instruction vertex replacement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bb.block import BasicBlock
from repro.eval.context import EvaluationContext
from repro.eval.metrics import accuracy_rate, explanation_accuracy
from repro.explain.config import ExplainerConfig
from repro.explain.explainer import CometExplainer
from repro.models.analytical import AnalyticalCostModel, ground_truth_explanations
from repro.perturb.config import ReplacementScheme
from repro.utils.rng import spawn_rngs


@dataclass
class SweepPoint:
    """One point of an ablation sweep."""

    value: object
    accuracy: float
    precision: float


def _accuracy_and_precision(
    blocks: Sequence[BasicBlock],
    model: AnalyticalCostModel,
    config: ExplainerConfig,
    seed: int,
) -> Tuple[float, float]:
    explainer = CometExplainer(model, config, rng=seed)
    outcomes: List[bool] = []
    precisions: List[float] = []
    for block, rng in zip(blocks, spawn_rngs(seed, len(blocks))):
        truth = ground_truth_explanations(block, model)
        explanation = explainer.explain(block, rng=rng)
        outcomes.append(explanation_accuracy(explanation.features, truth))
        precisions.append(explanation.precision)
    return accuracy_rate(outcomes), float(np.mean(precisions)) if precisions else float("nan")


def _sweep(
    context: EvaluationContext,
    values: Sequence[object],
    config_for_value,
    *,
    blocks: Optional[Sequence[BasicBlock]] = None,
    microarch: str = "hsw",
    seed: int = 31,
) -> List[SweepPoint]:
    blocks = list(blocks) if blocks is not None else context.test_blocks()
    model = context.crude_model(microarch)
    points = []
    for value in values:
        accuracy, precision = _accuracy_and_precision(
            blocks, model, config_for_value(value), seed
        )
        points.append(SweepPoint(value=value, accuracy=accuracy, precision=precision))
    return points


def sweep_precision_threshold(
    context: Optional[EvaluationContext] = None,
    thresholds: Sequence[float] = (0.5, 0.6, 0.7, 0.8, 0.9),
    **kwargs,
) -> List[SweepPoint]:
    """Figure 5: accuracy vs the precision threshold ``1 − δ``."""
    context = context or EvaluationContext.shared()
    base = context.settings.crude_explainer_config()
    return _sweep(
        context,
        list(thresholds),
        lambda threshold: base.with_overrides(delta=1.0 - float(threshold)),
        **kwargs,
    )


def sweep_deletion_probability(
    context: Optional[EvaluationContext] = None,
    probabilities: Sequence[float] = (0.0, 0.2, 0.33, 0.5, 0.66, 1.0),
    **kwargs,
) -> List[SweepPoint]:
    """Figure 6: accuracy vs the instruction-deletion probability ``p_del``."""
    context = context or EvaluationContext.shared()
    base = context.settings.crude_explainer_config()
    return _sweep(
        context,
        list(probabilities),
        lambda p: base.with_overrides(
            perturbation=base.perturbation.with_overrides(p_delete=float(p))
        ),
        **kwargs,
    )


def sweep_dependency_retention(
    context: Optional[EvaluationContext] = None,
    probabilities: Sequence[float] = (0.0, 0.1, 0.3, 0.5, 0.7),
    **kwargs,
) -> List[SweepPoint]:
    """Figure 7: accuracy and precision vs explicit dependency retention."""
    context = context or EvaluationContext.shared()
    base = context.settings.crude_explainer_config()
    return _sweep(
        context,
        list(probabilities),
        lambda p: base.with_overrides(
            perturbation=base.perturbation.with_overrides(
                p_dependency_explicit_retain=float(p)
            )
        ),
        **kwargs,
    )


def compare_replacement_schemes(
    context: Optional[EvaluationContext] = None,
    **kwargs,
) -> List[SweepPoint]:
    """Figure 8: opcode-only vs whole-instruction vertex replacement."""
    context = context or EvaluationContext.shared()
    base = context.settings.crude_explainer_config()
    return _sweep(
        context,
        [ReplacementScheme.OPCODE_ONLY.value, ReplacementScheme.WHOLE_INSTRUCTION.value],
        lambda scheme: base.with_overrides(
            perturbation=base.perturbation.with_overrides(
                replacement_scheme=ReplacementScheme(scheme)
            )
        ),
        **kwargs,
    )


def sweep_beam_width(
    context: Optional[EvaluationContext] = None,
    widths: Sequence[int] = (1, 2, 4),
    **kwargs,
) -> List[SweepPoint]:
    """Extra ablation (not in the paper): sensitivity to the beam width."""
    context = context or EvaluationContext.shared()
    base = context.settings.crude_explainer_config()
    return _sweep(
        context,
        list(widths),
        lambda width: base.with_overrides(beam_width=int(width)),
        **kwargs,
    )
