"""Table 2: accuracy of COMET's explanations against the crude model ``C``.

For every block in the explanation test set the crude analytical model gives
a ground-truth explanation (the features attaining the maximum cost); an
explanation method is scored accurate on a block if it names at least one
ground-truth feature and nothing else.  COMET is compared against the random
and fixed baselines on Haswell and Skylake, averaged over several seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bb.block import BasicBlock
from repro.eval.baselines import FixedExplanationBaseline, RandomExplanationBaseline
from repro.eval.context import EvaluationContext
from repro.eval.metrics import accuracy_rate, explanation_accuracy, summarize_mean_std
from repro.explain.config import ExplainerConfig
from repro.models.analytical import AnalyticalCostModel, ground_truth_explanations
from repro.runtime.backend import BackendSource
from repro.runtime.session import ExplanationSession
from repro.utils.rng import spawn_rngs
from repro.utils.tables import format_mean_std, render_table


@dataclass
class AccuracyResult:
    """Accuracy of the three explanation methods for one experiment run."""

    microarchs: Tuple[str, ...]
    #: method name -> microarch -> (mean accuracy %, std)
    accuracy: Dict[str, Dict[str, Tuple[float, float]]]
    blocks_evaluated: int
    seeds: int

    def render(self) -> str:
        """Text rendering in the shape of the paper's Table 2."""
        headers = ["Explanation"] + [
            f"Acc.(%) over C_{m.upper()}" for m in self.microarchs
        ]
        rows = []
        for method in ("Random", "Fixed", "COMET"):
            row: List[object] = [method]
            for microarch in self.microarchs:
                mean, std = self.accuracy[method][microarch]
                if method == "Fixed":
                    row.append(f"{mean:.2f}")
                else:
                    row.append(format_mean_std(mean, std))
            rows.append(row)
        return render_table(
            headers,
            rows,
            title=f"Table 2: explanation accuracy over the crude cost model "
            f"({self.blocks_evaluated} blocks, {self.seeds} seeds)",
        )


def _comet_accuracy_for_seed(
    blocks: Sequence[BasicBlock],
    model: AnalyticalCostModel,
    config: ExplainerConfig,
    seed,
    *,
    backend: BackendSource = None,
) -> float:
    outcomes = []
    with ExplanationSession(model, config, backend=backend) as session:
        for block, block_rng in zip(blocks, spawn_rngs(seed, len(blocks))):
            truth = ground_truth_explanations(block, model)
            explanation = session.explain(block, rng=block_rng)
            outcomes.append(explanation_accuracy(explanation.features, truth))
    return accuracy_rate(outcomes)


def _random_accuracy_for_seed(
    blocks: Sequence[BasicBlock], model: AnalyticalCostModel, seed
) -> float:
    baseline = RandomExplanationBaseline(blocks, model, rng=seed)
    outcomes = []
    for block in blocks:
        truth = ground_truth_explanations(block, model)
        outcomes.append(explanation_accuracy(baseline.explain(block), truth))
    return accuracy_rate(outcomes)


def _fixed_accuracy(blocks: Sequence[BasicBlock], model: AnalyticalCostModel) -> float:
    baseline = FixedExplanationBaseline(blocks, model)
    outcomes = []
    for block in blocks:
        truth = ground_truth_explanations(block, model)
        outcomes.append(explanation_accuracy(baseline.explain(block), truth))
    return accuracy_rate(outcomes)


def run_accuracy_experiment(
    context: Optional[EvaluationContext] = None,
    *,
    blocks: Optional[Sequence[BasicBlock]] = None,
    seeds: Optional[int] = None,
    backend: BackendSource = None,
) -> AccuracyResult:
    """Run the Table 2 experiment and return its result object."""
    context = context or EvaluationContext.shared()
    settings = context.settings
    blocks = list(blocks) if blocks is not None else context.test_blocks()
    seeds = seeds if seeds is not None else settings.seeds
    config = settings.crude_explainer_config()

    accuracy: Dict[str, Dict[str, Tuple[float, float]]] = {
        "Random": {},
        "Fixed": {},
        "COMET": {},
    }
    for microarch in settings.microarchs:
        model = context.crude_model(microarch)
        comet_scores = [
            _comet_accuracy_for_seed(blocks, model, config, 1000 + seed, backend=backend)
            for seed in range(seeds)
        ]
        random_scores = [
            _random_accuracy_for_seed(blocks, model, 2000 + seed)
            for seed in range(seeds)
        ]
        fixed_score = _fixed_accuracy(blocks, model)
        accuracy["COMET"][microarch] = summarize_mean_std(comet_scores)
        accuracy["Random"][microarch] = summarize_mean_std(random_scores)
        accuracy["Fixed"][microarch] = (fixed_score, 0.0)

    return AccuracyResult(
        microarchs=tuple(settings.microarchs),
        accuracy=accuracy,
        blocks_evaluated=len(blocks),
        seeds=seeds,
    )
