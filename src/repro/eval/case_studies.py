"""Section 6.4 case studies: per-block analyses of Ithemal and uiCA.

* Case study 1 — a store-dominated block whose throughput both models predict
  correctly; the paper's explanations name the two store instructions.
* Case study 2 — a division-and-dependency heavy block; uiCA's explanation
  names the ``div`` instruction and a RAW dependency while Ithemal's names
  only the instruction count, suggesting why Ithemal's prediction is the more
  erroneous one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bb.block import BasicBlock
from repro.eval.context import EvaluationContext
from repro.explain.explainer import CometExplainer
from repro.explain.explanation import Explanation

#: The two basic blocks of Section 6.4 (Listings 2 and 3).
CASE_STUDY_BLOCKS: Dict[str, str] = {
    "case-study-1": """
        lea rdx, [rax + 1]
        mov qword ptr [rdi + 24], rdx
        mov byte ptr [rax], 80
        mov rsi, qword ptr [r14 + 32]
        mov rdi, rbp
    """,
    "case-study-2": """
        mov ecx, edx
        xor edx, edx
        lea rax, [rcx + rax - 1]
        div rcx
        mov rdx, rcx
        imul rax, rcx
    """,
}


@dataclass
class CaseStudyResult:
    """Predictions and explanations of both models for one case-study block."""

    name: str
    block: BasicBlock
    hardware_throughput: float
    explanations: Dict[str, Explanation]

    def render(self) -> str:
        lines = [f"{self.name}", "-" * len(self.name), self.block.text, ""]
        lines.append(f"  hardware (oracle) throughput: {self.hardware_throughput:.2f} cycles")
        for label, explanation in self.explanations.items():
            features = (
                ", ".join(f.describe() for f in explanation.features)
                or "(empty explanation)"
            )
            lines.append(
                f"  {label}: prediction {explanation.prediction:.2f} cycles, "
                f"explanation {{{features}}}"
            )
        return "\n".join(lines)


def run_case_studies(
    context: Optional[EvaluationContext] = None,
    *,
    microarch: str = "hsw",
    models: Sequence[str] = ("ithemal", "uica"),
    seed: int = 5,
) -> List[CaseStudyResult]:
    """Explain both case-study blocks with both models."""
    from repro.data.oracle import HardwareOracle

    context = context or EvaluationContext.shared()
    oracle = HardwareOracle(microarch)
    labels = {"ithemal": "Ithemal", "uica": "uiCA"}
    results = []
    for name, text in CASE_STUDY_BLOCKS.items():
        block = BasicBlock.from_text(text)
        explanations: Dict[str, Explanation] = {}
        for model_name in models:
            model = context.model(model_name, microarch)
            explainer = CometExplainer(
                model, context.settings.explainer_config, rng=seed
            )
            explanations[labels.get(model_name, model_name)] = explainer.explain(block)
        results.append(
            CaseStudyResult(
                name=name,
                block=block,
                hardware_throughput=oracle.measure(block),
                explanations=explanations,
            )
        )
    return results
