"""GitHub-flavoured markdown rendering of tables and explanations."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.explain.explanation import Explanation


def _fmt(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def markdown_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    precision: int = 2,
) -> str:
    """Render rows as a markdown table (same contract as ``render_table``)."""
    headers = list(headers)
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join(" --- " for _ in headers) + "|"]
    for row in rows:
        cells = [_fmt(cell, precision) for cell in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells but the table has {len(headers)} columns"
            )
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def explanation_to_markdown(explanation: Explanation) -> str:
    """One explanation rendered as a small markdown report."""
    lines = [
        f"### Explanation for `{explanation.model_name}`",
        "",
        "```asm",
        explanation.block.text,
        "```",
        "",
        f"* prediction: **{explanation.prediction:.2f} cycles** "
        f"(acceptance ball ±{explanation.epsilon:.2f})",
        f"* precision: {explanation.precision:.2f}, coverage: {explanation.coverage:.2f}, "
        f"threshold met: {'yes' if explanation.meets_threshold else 'no'}",
        "",
        "Explanation features:",
    ]
    if explanation.features:
        lines.extend(f"* {feature.describe()}" for feature in explanation.features)
    else:
        lines.append("* (empty — the prediction is insensitive to every perturbation tried)")
    return "\n".join(lines)
