"""JSON and CSV serialisation of explanations and experiment rows."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence

from repro.bb.features import (
    DependencyFeature,
    Feature,
    InstructionFeature,
    NumInstructionsFeature,
)
from repro.explain.explanation import Explanation


def feature_to_dict(feature: Feature) -> Dict[str, object]:
    """A JSON-safe dictionary describing one explanation feature."""
    base: Dict[str, object] = {
        "kind": feature.kind.value,
        "description": feature.describe(),
    }
    if isinstance(feature, InstructionFeature):
        base.update(
            {
                "index": feature.index,
                "mnemonic": feature.mnemonic,
                "operands": list(feature.operand_text),
            }
        )
    elif isinstance(feature, DependencyFeature):
        base.update(
            {
                "source": feature.source,
                "destination": feature.destination,
                "dependency_kind": feature.dep_kind.value,
                "location_space": feature.location_space,
                "source_mnemonic": feature.source_mnemonic,
                "destination_mnemonic": feature.destination_mnemonic,
            }
        )
    elif isinstance(feature, NumInstructionsFeature):
        base.update({"count": feature.count})
    return base


def explanation_to_dict(explanation: Explanation) -> Dict[str, object]:
    """A JSON-safe dictionary capturing one explanation end to end."""
    return {
        "block": explanation.block.text.splitlines(),
        "block_id": explanation.block.block_id,
        "model": explanation.model_name,
        "prediction": explanation.prediction,
        "epsilon": explanation.epsilon,
        "precision": explanation.precision,
        "coverage": explanation.coverage,
        "meets_threshold": explanation.meets_threshold,
        "num_queries": explanation.num_queries,
        "precision_samples": explanation.precision_samples,
        "candidates_evaluated": explanation.candidates_evaluated,
        "features": [feature_to_dict(feature) for feature in explanation.features],
    }


def explanation_to_json(explanation: Explanation, *, indent: int = 2) -> str:
    """One explanation rendered as a JSON document."""
    return json.dumps(explanation_to_dict(explanation), indent=indent)


def load_explanation_dicts(path) -> List[Dict[str, object]]:
    """Read back a JSON file written from :func:`explanation_to_dict` entries.

    Accepts either a single object or a list of objects; always returns a
    list so callers can iterate uniformly.
    """
    data = json.loads(Path(path).read_text())
    if isinstance(data, dict):
        return [data]
    if isinstance(data, list):
        return data
    raise ValueError(f"expected a JSON object or array in {path}, got {type(data)!r}")


_CSV_COLUMNS = (
    "block_id",
    "model",
    "prediction",
    "precision",
    "coverage",
    "meets_threshold",
    "num_features",
    "feature_kinds",
    "features",
)


def explanations_to_csv(explanations: Sequence[Explanation], path) -> Path:
    """Write a one-row-per-explanation CSV summary and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_COLUMNS)
        for explanation in explanations:
            kinds = sorted({f.kind.value for f in explanation.features})
            writer.writerow(
                [
                    explanation.block.block_id or "",
                    explanation.model_name,
                    f"{explanation.prediction:.6f}",
                    f"{explanation.precision:.6f}",
                    f"{explanation.coverage:.6f}",
                    int(explanation.meets_threshold),
                    len(explanation.features),
                    ";".join(kinds),
                    ";".join(f.describe() for f in explanation.features),
                ]
            )
    return path


def rows_to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]], path) -> Path:
    """Write generic experiment rows (e.g. a table's cells) to CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    headers = list(headers)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            row = list(row)
            if len(row) != len(headers):
                raise ValueError(
                    f"row has {len(row)} cells but the header has {len(headers)}"
                )
            writer.writerow(row)
    return path
