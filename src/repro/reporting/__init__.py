"""Serialisation and reporting helpers for explanations and experiments.

The evaluation drivers return plain data structures and text tables; this
subpackage adds the formats downstream tooling usually wants:

* :mod:`repro.reporting.export` — JSON/CSV serialisation of features,
  explanations and experiment rows,
* :mod:`repro.reporting.markdown` — GitHub-flavoured markdown rendering of
  the same tables the benchmark harness prints as fixed-width text.
"""

from repro.reporting.export import (
    explanation_to_dict,
    explanation_to_json,
    explanations_to_csv,
    feature_to_dict,
    load_explanation_dicts,
    rows_to_csv,
)
from repro.reporting.markdown import explanation_to_markdown, markdown_table

__all__ = [
    "feature_to_dict",
    "explanation_to_dict",
    "explanation_to_json",
    "explanations_to_csv",
    "load_explanation_dicts",
    "rows_to_csv",
    "markdown_table",
    "explanation_to_markdown",
]
