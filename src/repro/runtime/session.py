"""Explanation sessions: shared state for whole-dataset explanation runs.

The one-shot :class:`~repro.explain.explainer.CometExplainer` API treats each
explanation as an island: fresh cache history, a fresh background population
per search, and whatever execution substrate happens to be wired into the
model.  An :class:`ExplanationSession` makes the run the unit of ownership
instead.  One session holds

* the :class:`~repro.models.base.CachedCostModel` wrapper (so every block of
  a run shares one LRU-cached query history),
* the :class:`~repro.runtime.backend.ExecutionBackend` all batch prediction
  fans out on (installed on the model for the session's lifetime, released on
  ``close()``),
* one :class:`~repro.explain.coverage.PopulationRecord` per explained block —
  the background population and its vectorized presence index are drawn once
  and reused across every anchor beam level and every repeated explanation of
  that block in the run.

Determinism: the backend never touches the random stream (it only decides
where deterministic predictions execute), so seeded session runs are
bit-for-bit identical across serial, thread and process backends.  The first
explanation of each block is also bit-for-bit what the session-less explainer
produces; *repeated* explanations of one block reuse the recorded population
instead of redrawing it, which is exactly the state sharing the session is
for.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.bb.block import BasicBlock
from repro.explain.anchors import AnchorSearch
from repro.explain.config import ExplainerConfig
from repro.explain.coverage import PopulationRecord
from repro.explain.explanation import Explanation
from repro.models.base import CachedCostModel, CostModel, QueryCounter
from repro.runtime.backend import BackendSource, ExecutionBackend, resolve_backend
from repro.utils.errors import BackendError
from repro.utils.rng import RandomSource, as_rng, spawn_rngs


@dataclass(frozen=True)
class SessionStats:
    """Run-level accounting, snapshot via :meth:`ExplanationSession.stats`."""

    explanations: int
    model_queries: int
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    populations_cached: int
    backend: str

    def describe(self) -> str:
        return (
            f"{self.explanations} explanations, {self.model_queries} model "
            f"queries ({self.cache_hit_rate:.1%} cache hit rate), "
            f"{self.populations_cached} background populations, "
            f"backend {self.backend}"
        )


class ExplanationSession:
    """Owns the shared state of one explanation run.

    Parameters
    ----------
    model:
        The cost model to explain.  Wrapped in a
        :class:`~repro.models.base.CachedCostModel` unless it already is one,
        so the whole run shares one query cache.
    config:
        Explanation hyperparameters (shared by every explanation of the run).
    backend:
        Execution substrate — a short name (``"serial"``/``"thread"``/
        ``"process"``), a constructed backend, or ``None`` for the
        environment-controlled default.  The session owns backends it
        resolves from names and closes them; a backend *instance* passed in
        stays caller-owned.
    rng:
        Random source for explanations that do not bring their own stream.
    cache_entries:
        LRU capacity used when the session wraps the model itself.
    max_population_records:
        How many per-block background populations (plus presence indexes)
        the session keeps alive at once, least-recently-used first.  Bounds
        memory on fleets of distinct blocks, where a record pays off only if
        its block comes around again.

    Use as a context manager (or call :meth:`close`) so pooled workers are
    released deterministically::

        with ExplanationSession(model, config, backend="process") as session:
            explanations = session.explain_many(blocks, rng=0)
            print(session.stats().describe())
    """

    def __init__(
        self,
        model: CostModel,
        config: Optional[ExplainerConfig] = None,
        *,
        backend: BackendSource = None,
        workers: Optional[int] = None,
        rng: RandomSource = None,
        cache_entries: int = 100_000,
        max_population_records: int = 256,
    ) -> None:
        if max_population_records < 1:
            raise ValueError("max_population_records must be >= 1")
        self.max_population_records = max_population_records
        self.config = config or ExplainerConfig()
        self.model: CachedCostModel = (
            model
            if isinstance(model, CachedCostModel)
            else CachedCostModel(model, max_entries=cache_entries)
        )
        installed = self.model.execution_backend
        if backend is None and installed is not None:
            # No explicit request: a substrate the caller already configured
            # on the model (backend=/batch_workers) beats the ambient
            # default — borrow it and leave its ownership untouched.
            self.backend = installed
            self._owns_backend = False
        else:
            self._owns_backend = not isinstance(backend, ExecutionBackend)
            self.backend = resolve_backend(backend, workers)
            if installed is not self.backend:
                self.model.set_backend(self.backend)
        self._rng = as_rng(rng)
        self._records: "OrderedDict[Tuple, PopulationRecord]" = OrderedDict()
        self.explanations_produced = 0
        self._query_base = self.model.query_count
        self._hit_base = self.model.hits
        self._miss_base = self.model.misses
        self._closed = False

    # -------------------------------------------------------------- explain

    def coverage_record(self, block: BasicBlock) -> Optional[PopulationRecord]:
        """The shared population record for ``block`` (``None`` when disabled)."""
        if not self.config.shared_background:
            return None
        key = (block.key(), self.config.coverage_samples)
        record = self._records.get(key)
        if record is None:
            record = self._records[key] = PopulationRecord()
        self._records.move_to_end(key)
        while len(self._records) > self.max_population_records:
            self._records.popitem(last=False)
        return record

    def explain(self, block: BasicBlock, rng: RandomSource = None) -> Explanation:
        """Explain one block using the session's shared state."""
        self._check_open()
        generator = as_rng(rng) if rng is not None else self._rng
        with QueryCounter(self.model) as counter:
            search = AnchorSearch(
                self.model,
                block,
                self.config,
                generator,
                coverage_record=self.coverage_record(block),
            )
            anchor = search.search()
        self.explanations_produced += 1
        return Explanation.from_search(search, anchor, num_queries=counter.queries)

    def explain_many(
        self, blocks: Sequence[BasicBlock], rng: RandomSource = None
    ) -> List[Explanation]:
        """Explain a whole dataset with independent per-block random streams.

        Stream spawning matches the session-less ``explain_many`` exactly, so
        moving a fleet onto a session changes where the work runs and what is
        shared — never which random numbers each block's search consumes.
        """
        blocks = list(blocks)
        streams = spawn_rngs(rng if rng is not None else self._rng, len(blocks))
        return [self.explain(block, rng=stream) for block, stream in zip(blocks, streams)]

    def global_explainer(self, blocks: Sequence[BasicBlock], **kwargs):
        """A :class:`~repro.globalx.global_explainer.GlobalExplainer` whose
        block-set scoring runs through this session's cached, backend-driven
        model (one batched query for the whole dataset)."""
        from repro.globalx.global_explainer import GlobalExplainer

        self._check_open()
        return GlobalExplainer(self.model, blocks, **kwargs)

    # ----------------------------------------------------------------- stats

    def stats(self) -> SessionStats:
        """Accounting since the session started (inner-model work only)."""
        hits = self.model.hits - self._hit_base
        misses = self.model.misses - self._miss_base
        lookups = hits + misses
        return SessionStats(
            explanations=self.explanations_produced,
            model_queries=self.model.query_count - self._query_base,
            cache_hits=hits,
            cache_misses=misses,
            cache_hit_rate=hits / lookups if lookups else 0.0,
            populations_cached=len(self._records),
            backend=self.backend.describe(),
        )

    # ------------------------------------------------------------- lifecycle

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise BackendError("this explanation session has been closed")

    def close(self) -> None:
        """Release the session's backend (if it owns one).  Idempotent.

        A caller-owned backend instance stays installed on the model — the
        caller selected that substrate for the model's lifetime, and the
        session merely borrowed it for the run.
        """
        if self._closed:
            return
        if self._owns_backend:
            self.model.set_backend(None)
            self.backend.close()
        self._records.clear()
        self._closed = True

    def __enter__(self) -> "ExplanationSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
