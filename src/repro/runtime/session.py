"""Explanation sessions: shared state for whole-dataset explanation runs.

The one-shot :class:`~repro.explain.explainer.CometExplainer` API treats each
explanation as an island: fresh cache history, a fresh background population
per search, and whatever execution substrate happens to be wired into the
model.  An :class:`ExplanationSession` makes the run the unit of ownership
instead.  One session holds

* the :class:`~repro.models.base.CachedCostModel` wrapper (so every block of
  a run shares one LRU-cached query history),
* the :class:`~repro.runtime.backend.ExecutionBackend` all batch prediction
  fans out on (installed on the model for the session's lifetime, released on
  ``close()``),
* one :class:`~repro.explain.coverage.PopulationRecord` per explained block —
  the background population and its vectorized presence index are drawn once
  and reused across every anchor beam level and every repeated explanation of
  that block in the run.

Determinism: the backend never touches the random stream (it only decides
where deterministic predictions execute), so seeded session runs are
bit-for-bit identical across serial, thread and process backends.  The first
explanation of each block is also bit-for-bit what the session-less explainer
produces; *repeated* explanations of one block reuse the recorded population
instead of redrawing it, which is exactly the state sharing the session is
for.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.bb.block import BasicBlock
from repro.cache.fingerprint import cacheable_seed, result_fingerprint
from repro.cache.store import CacheStats, ResultCache
from repro.explain.anchors import AnchorSearch
from repro.explain.config import ExplainerConfig
from repro.explain.coverage import PopulationRecord
from repro.explain.explanation import Explanation
from repro.models.base import CachedCostModel, CostModel, QueryCounter
from repro.perturb.algorithm import perturb_tally, plan_cache_entries
from repro.perturb.batch import encoded_tally
from repro.runtime.backend import BackendSource, ExecutionBackend, resolve_backend
from repro.runtime.checkpoint import CheckpointJournal, run_fingerprint
from repro.utils.cancellation import CancelToken
from repro.utils.errors import BackendError, CheckpointError
from repro.utils.rng import RandomSource, as_rng, spawn_rngs, spawn_seeds

#: One unit of sharded work: (position in the fleet, block, its rng stream).
_ShardItem = Tuple[int, BasicBlock, np.random.Generator]


def _search_block(
    model: CostModel,
    block: BasicBlock,
    config: ExplainerConfig,
    generator: np.random.Generator,
    record: Optional[PopulationRecord],
    cancel: Optional[CancelToken] = None,
) -> Explanation:
    """Run one anchor search — the single code path every driver shares.

    Used by :meth:`ExplanationSession.explain`, the in-process shard runner
    and the process-shard worker, so a block's explanation is computed by
    byte-identical code no matter where it executes.  A ``cancel`` token is
    checked cooperatively between KL-LUCB rounds; a token that never fires
    leaves the random stream untouched.
    """
    with QueryCounter(model) as counter:
        search = AnchorSearch(
            model, block, config, generator, coverage_record=record, cancel=cancel
        )
        anchor = search.search()
    return Explanation.from_search(search, anchor, num_queries=counter.queries)


def _explain_shard(
    model: CostModel,
    config: ExplainerConfig,
    shard: Sequence[_ShardItem],
    cancel: Optional[CancelToken] = None,
) -> List[Tuple[int, Explanation]]:
    """Explain one shard with shard-local population records.

    Every sharded path — in-process threads and process workers alike — runs
    this exact loop, so shard results are byte-identical across backends.
    Records are *scoped to the shard* on purpose: sharing the session's LRU
    across concurrent shards would make reuse-vs-redraw depend on eviction
    timing, and all occurrences of a block key are routed to one shard
    anyway, so first-fill/reuse order within the shard matches the serial
    loop exactly.
    """
    records: dict = {}
    results: List[Tuple[int, Explanation]] = []
    for position, block, stream in shard:
        if cancel is not None:
            cancel.check()
        record = None
        if config.shared_background:
            key = (block.key(), config.coverage_samples)
            record = records.setdefault(key, PopulationRecord())
        results.append(
            (position, _search_block(model, block, config, stream, record, cancel))
        )
    return results


def _explain_shard_remote(payload) -> List[Tuple[int, Explanation]]:
    """Process-shard worker: the payload carries everything the shard needs
    (model, config, items, cache bound) because workers share no memory with
    the session.  Module-level so it pickles by reference."""
    model, config, shard, cache_entries = payload
    if not isinstance(model, CachedCostModel):
        model = CachedCostModel(model, max_entries=cache_entries)
    return _explain_shard(model, config, shard)


@dataclass(frozen=True)
class SessionStats:
    """Run-level accounting, snapshot via :meth:`ExplanationSession.stats`."""

    explanations: int
    model_queries: int
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    populations_cached: int
    backend: str
    worker_restarts: int = 0
    worker_retries: int = 0
    worker_fallbacks: int = 0
    checkpoint_skips: int = 0
    result_cache: Optional[CacheStats] = None
    #: Γ perturbations produced during this session (process-wide counters,
    #: diffed against the session's start snapshot).
    perturbations: int = 0
    #: Perturbations that silently fell back to the original block after
    #: ``max_block_attempts`` failed attempts — each injects a trivially
    #: preserving sample into precision estimates, so a high rate is a
    #: red flag for the perturbation configuration.
    perturb_fallbacks: int = 0
    #: Constraint-plan cache entries currently held by live perturbers (a
    #: gauge, not a counter — bounded per perturber by ``max_cached_plans``).
    plan_cache_entries: int = 0
    #: Encoded-pipeline coverage during this session: rows Γ emitted without
    #: constructing a block versus block constructions (emitted materialised
    #: plus materialised on demand).  A healthy encoded run keeps
    #: ``materialized_rows`` near the fallback count; ``materialized_rows``
    #: tracking ``encoded_rows`` means the fast path is being bypassed.
    encoded_rows: int = 0
    materialized_rows: int = 0

    def describe(self) -> str:
        resilience = ""
        if self.worker_restarts or self.worker_fallbacks or self.checkpoint_skips:
            resilience = (
                f", {self.worker_restarts} worker restarts "
                f"({self.worker_fallbacks} serial fallbacks), "
                f"{self.checkpoint_skips} checkpoint skips"
            )
        perturb = ""
        if self.perturb_fallbacks:
            perturb = (
                f", {self.perturb_fallbacks}/{self.perturbations} perturbation "
                f"fallbacks"
            )
        encoded = ""
        if self.encoded_rows:
            encoded = (
                f", {self.encoded_rows} encoded rows "
                f"({self.materialized_rows} materialized)"
            )
        memo = ""
        if self.result_cache is not None:
            memo = f", {self.result_cache.describe()}"
        return (
            f"{self.explanations} explanations, {self.model_queries} model "
            f"queries ({self.cache_hit_rate:.1%} cache hit rate), "
            f"{self.populations_cached} background populations, "
            f"backend {self.backend}{resilience}{perturb}{encoded}{memo}"
        )


class ExplanationSession:
    """Owns the shared state of one explanation run.

    Parameters
    ----------
    model:
        The cost model to explain.  Wrapped in a
        :class:`~repro.models.base.CachedCostModel` unless it already is one,
        so the whole run shares one query cache.
    config:
        Explanation hyperparameters (shared by every explanation of the run).
    backend:
        Execution substrate — a short name (``"serial"``/``"thread"``/
        ``"process"``), a constructed backend, or ``None`` for the
        environment-controlled default.  The session owns backends it
        resolves from names and closes them; a backend *instance* passed in
        stays caller-owned.
    rng:
        Random source for explanations that do not bring their own stream.
    cache_entries:
        LRU capacity used when the session wraps the model itself.
    max_population_records:
        How many per-block background populations (plus presence indexes)
        the session keeps alive at once, least-recently-used first.  Bounds
        memory on fleets of distinct blocks, where a record pays off only if
        its block comes around again.
    result_cache:
        Whole-explanation memoization: a :class:`~repro.cache.ResultCache`
        instance (caller-owned), a path to build a disk-backed store from
        (session-owned, closed with the session), or ``None`` to disable.
        With a cache installed, every *cache-eligible* computation — one
        driven by an integer seed — runs **history-free** with call-scoped
        population records (the same semantics the explanation service
        applies per request), so each memoized result is a pure function of
        ``(block, model, uarch, config, seed)`` and a hit is bit-for-bit
        what the computation would have produced.  Explanations driven by a
        live generator (or the session's ambient rng) bypass the cache and
        keep the legacy session-scoped record sharing.

    Use as a context manager (or call :meth:`close`) so pooled workers are
    released deterministically::

        with ExplanationSession(model, config, backend="process") as session:
            explanations = session.explain_many(blocks, rng=0)
            print(session.stats().describe())
    """

    def __init__(
        self,
        model: CostModel,
        config: Optional[ExplainerConfig] = None,
        *,
        backend: BackendSource = None,
        workers: Optional[int] = None,
        rng: RandomSource = None,
        cache_entries: int = 100_000,
        max_population_records: int = 256,
        result_cache: Union["ResultCache", str, Path, None] = None,
    ) -> None:
        if max_population_records < 1:
            raise ValueError("max_population_records must be >= 1")
        self.max_population_records = max_population_records
        self.config = config or ExplainerConfig()
        self.model: CachedCostModel = (
            model
            if isinstance(model, CachedCostModel)
            else CachedCostModel(model, max_entries=cache_entries)
        )
        installed = self.model.execution_backend
        if backend is None and installed is not None:
            # No explicit request: a substrate the caller already configured
            # on the model (backend=/batch_workers) beats the ambient
            # default — borrow it and leave its ownership untouched.
            self.backend = installed
            self._owns_backend = False
        else:
            self._owns_backend = not isinstance(backend, ExecutionBackend)
            self.backend = resolve_backend(backend, workers)
            if installed is not self.backend:
                self.model.set_backend(self.backend)
        self._rng = as_rng(rng)
        if isinstance(result_cache, ResultCache):
            self.result_cache: Optional[ResultCache] = result_cache
            self._owns_result_cache = False
        elif result_cache is not None:
            self.result_cache = ResultCache(result_cache)
            self._owns_result_cache = True
        else:
            self.result_cache = None
            self._owns_result_cache = False
        self._records: "OrderedDict[Tuple, PopulationRecord]" = OrderedDict()
        # Sharded explain_many runs shards on concurrent threads that all
        # look up records through this session; the lock keeps the LRU
        # bookkeeping (and record creation) race-free.
        self._records_lock = threading.Lock()
        self.explanations_produced = 0
        self.checkpoint_skips = 0
        self._query_base = self.model.query_count
        self._hit_base = self.model.hits
        self._miss_base = self.model.misses
        self._perturb_base = perturb_tally()
        self._encoded_base = encoded_tally()
        self._closed = False

    # -------------------------------------------------------------- explain

    def coverage_record(self, block: BasicBlock) -> Optional[PopulationRecord]:
        """The shared population record for ``block`` (``None`` when disabled)."""
        if not self.config.shared_background:
            return None
        key = (block.key(), self.config.coverage_samples)
        with self._records_lock:
            record = self._records.get(key)
            if record is None:
                record = self._records[key] = PopulationRecord()
            self._records.move_to_end(key)
            while len(self._records) > self.max_population_records:
                self._records.popitem(last=False)
        return record

    def reset_population_records(self) -> None:
        """Drop the per-block background populations (keep cache and backend).

        Population reuse is *stateful*: a search whose block already has a
        recorded population skips the draw and therefore consumes its random
        stream differently than a fresh search would.  Callers that promise
        history-independent seeded results — the explanation service resets
        before every request — scope records with this; the query cache and
        the backend stay warm because they never change what a search
        computes, only how fast.
        """
        with self._records_lock:
            self._records.clear()

    # --------------------------------------------------------- result cache

    def _result_fingerprint(self, block: BasicBlock, seed: int) -> str:
        return result_fingerprint(
            block=block,
            model_name=self.model.name,
            uarch=self.model.microarch,
            config=self.config,
            seed=int(seed),
        )

    def result_cache_lookup(
        self, block: BasicBlock, seed: RandomSource
    ) -> Optional[Explanation]:
        """The memoized explanation for ``(block, seed)``, or ``None``.

        ``None`` when there is no cache, the seed is not an integer (live
        generators are history-dependent and never memoized), or the entry
        is simply absent.  Used by the fused batching tick so cache-hit
        requests retire without consuming a KL-LUCB round.
        """
        if self.result_cache is None or not cacheable_seed(seed):
            return None
        return self.result_cache.get(self._result_fingerprint(block, int(seed)))

    def result_cache_store(
        self, block: BasicBlock, seed: RandomSource, explanation: Explanation
    ) -> None:
        """Memoize a history-free result computed for ``(block, seed)``.

        The caller asserts purity: the explanation must have been computed
        with a fresh (call-scoped) population record from
        ``default_rng(seed)`` — exactly what :meth:`explain` does when a
        cache is installed and what the service's per-request record reset
        guarantees.
        """
        if self.result_cache is None or not cacheable_seed(seed):
            return
        self.result_cache.put(self._result_fingerprint(block, int(seed)), explanation)

    def explain(
        self,
        block: BasicBlock,
        rng: RandomSource = None,
        *,
        cancel: Optional[CancelToken] = None,
    ) -> Explanation:
        """Explain one block using the session's shared state.

        ``cancel`` is checked cooperatively between KL-LUCB rounds; a token
        that never fires leaves the result bit-for-bit unchanged.

        With a :class:`result cache <repro.cache.ResultCache>` installed and
        an integer ``rng`` seed, the call is memoized: a hit returns the
        stored explanation verbatim — including its ``num_queries``, which
        by the cache's attribution rule is the query count of the
        computation that *stored* the entry, since a hit itself queries the
        model zero times — and a miss computes with a fresh call-scoped
        population record (history-free, so the stored result is a pure
        function of the fingerprint) and stores it on the way out.
        """
        self._check_open()
        if self.result_cache is not None and cacheable_seed(rng):
            seed = int(rng)  # type: ignore[arg-type]
            fingerprint = self._result_fingerprint(block, seed)
            cached = self.result_cache.get(fingerprint)
            if cached is not None:
                self.explanations_produced += 1
                return cached
            record = PopulationRecord() if self.config.shared_background else None
            explanation = _search_block(
                self.model, block, self.config, as_rng(seed), record, cancel
            )
            self.result_cache.put(fingerprint, explanation)
            self.explanations_produced += 1
            return explanation
        generator = as_rng(rng) if rng is not None else self._rng
        explanation = _search_block(
            self.model,
            block,
            self.config,
            generator,
            self.coverage_record(block),
            cancel,
        )
        self.explanations_produced += 1
        return explanation

    def explain_many(
        self,
        blocks: Sequence[BasicBlock],
        rng: RandomSource = None,
        *,
        shards: Union[int, str, None] = "auto",
        checkpoint: Union[str, Path, None] = None,
        cancel: Optional[CancelToken] = None,
    ) -> List[Explanation]:
        """Explain a whole dataset with independent per-block random streams.

        Stream spawning matches the session-less ``explain_many`` exactly, so
        moving a fleet onto a session changes where the work runs and what is
        shared — never which random numbers each block's search consumes.

        ``shards`` controls the block-level parallelism layered on top of the
        query-level batching: the fleet is partitioned into that many shards,
        each shard runs its full anchor searches on one backend worker, and
        the results are merged back in input order.  ``"auto"`` (the default)
        sizes the shard count to the backend's workers — on the serial
        backend that is 1, so fleets stay sequential until a parallel
        backend is selected; an explicit count pins it; ``None``/``0``/``1``
        force the sequential loop.
        Sharding is seeded-deterministic and result-identical to the unsharded
        path for a fresh run: all occurrences of one block key are routed to
        the same shard in their original order, so population-record
        first-fill/reuse happens exactly where the serial loop would have,
        and every block consumes only its own spawned stream.  Per-explanation
        ``num_queries`` matches the sequential loop too: searches measure
        their queries through thread-scoped tallies
        (:meth:`~repro.models.base.CostModel.query_tally`), so concurrent
        shards cannot pollute each other's counts (exact as long as distinct
        block keys do not collide in the query cache, which key-grouped
        sharding makes the overwhelmingly common case).  Two caveats, both
        deterministic: records are scoped to the call (a sharded call
        neither sees nor feeds the session's cross-call record cache), and
        parity with the serial loop is exact as long as the fleet's distinct
        blocks fit ``max_population_records`` — under eviction pressure the
        serial loop redraws where shard-local records reuse.

        ``checkpoint`` names a crash-safe journal file: every completed
        explanation is journaled as it finishes, and re-running the *same*
        call (same blocks, model, config, integer seed) after an
        interruption skips the journaled positions and produces results
        bit-for-bit identical to an uninterrupted run.  Checkpointed runs
        require an integer ``rng`` seed (a live generator's state dies with
        the crash) and run block-sequentially with position-independent
        searches — each position draws its own background population — so
        which positions were already journaled can never change what the
        remaining positions compute.

        ``cancel`` is checked between blocks and between KL-LUCB rounds on
        the in-process paths (serial and thread backends, and all
        checkpointed runs); process-sharded fleets check between shards
        only, since the token cannot cross a process boundary.

        With a result cache installed and an integer ``rng`` seed, fleet
        positions whose block key is unique within the call are memoized
        under their spawned child seed: hits are returned verbatim without
        running a search, misses compute with call-scoped records and are
        stored.  Positions sharing a block key bypass the cache and keep
        their within-call record sharing bit-for-bit.
        """
        self._check_open()
        blocks = list(blocks)
        if checkpoint is not None:
            return self._explain_many_checkpointed(
                blocks, rng, checkpoint=checkpoint, shards=shards, cancel=cancel
            )
        results: List[Optional[Explanation]] = [None] * len(blocks)
        fingerprints: dict = {}
        use_cache = self.result_cache is not None and cacheable_seed(rng)
        if use_cache:
            # Each fleet position's stream is fully determined by its spawned
            # child seed, so positions are memoized under (block, child seed).
            # Only positions whose block key is *unique in this fleet* take
            # part: duplicate-key positions share a population record within
            # the call (later occurrences reuse the first one's draw), so
            # their results are not pure functions of their own seed — they
            # bypass the cache and compute exactly as they always did.
            seeds = spawn_seeds(int(rng), len(blocks))  # type: ignore[arg-type]
            streams = [np.random.default_rng(s) for s in seeds]
            key_counts: dict = {}
            for block in blocks:
                key_counts[block.key()] = key_counts.get(block.key(), 0) + 1
            assert self.result_cache is not None
            for position, (block, seed) in enumerate(zip(blocks, seeds)):
                if key_counts[block.key()] == 1:
                    fingerprint = self._result_fingerprint(block, seed)
                    fingerprints[position] = fingerprint
                    results[position] = self.result_cache.get(fingerprint)
        else:
            streams = list(
                spawn_rngs(rng if rng is not None else self._rng, len(blocks))
            )
        items: List[_ShardItem] = [
            (position, block, stream)
            for position, (block, stream) in enumerate(zip(blocks, streams))
            if results[position] is None
        ]
        plan = self._shard_plan([block for _, block, _ in items], shards)
        if not items:
            pairs: List[Tuple[int, Explanation]] = []
        elif plan is None:
            if use_cache:
                # Call-scoped records (the history-free contract, see
                # ``result_cache`` in the class docstring) — the exact loop
                # every shard runs, so cache on/off changes nothing for a
                # fresh session and the computed results are safe to store.
                pairs = _explain_shard(self.model, self.config, items, cancel)
            else:
                return [
                    self.explain(block, rng=stream, cancel=cancel)
                    for block, stream in zip(blocks, streams)
                ]
        else:
            shard_lists = [[items[i] for i in indices] for indices in plan]
            if self.backend.shares_memory:
                pairs = self._run_shards_inprocess(shard_lists, cancel=cancel)
            else:
                if cancel is not None:
                    cancel.check()
                payloads = [
                    (self.model.inner, self.config, shard, self.model.max_entries)
                    for shard in shard_lists
                ]
                pairs = [
                    pair
                    for shard_result in self.backend.map_batch(
                        _explain_shard_remote, payloads
                    )
                    for pair in shard_result
                ]
        self.explanations_produced += len(blocks)
        for position, explanation in pairs:
            results[position] = explanation
            fingerprint = fingerprints.get(position)
            if fingerprint is not None:
                assert self.result_cache is not None
                self.result_cache.put(fingerprint, explanation)
        return results  # type: ignore[return-value]

    def _explain_many_checkpointed(
        self,
        blocks: List[BasicBlock],
        rng: RandomSource,
        *,
        checkpoint: Union[str, Path],
        shards: Union[int, str, None],
        cancel: Optional[CancelToken],
    ) -> List[Explanation]:
        """The journaled ``explain_many`` path — see the public docstring.

        Sequential with ``record=None`` per position on purpose: population
        reuse and sharding both make a position's result depend on which
        *other* positions ran in this process, and a resumed run has not run
        the journaled ones.  Position-independent searches are what make
        skip-and-resume provably bit-for-bit; each position still fans its
        query batches out through the session's backend, so the run keeps
        its batch-level parallelism.
        """
        if not isinstance(rng, (int, np.integer)) or isinstance(rng, bool):
            raise CheckpointError(
                "checkpointed explain_many requires an integer seed: resuming "
                "a run driven by a live generator is unreproducible (its "
                f"state advanced with the crash); got {type(rng).__name__}"
            )
        fingerprint = run_fingerprint(
            blocks=blocks,
            model_name=self.model.name,
            uarch=self.model.microarch,
            config=self.config,
            seed=int(rng),
            shards_normalised=str(shards),
        )
        streams = spawn_rngs(int(rng), len(blocks))
        results: List[Optional[Explanation]] = [None] * len(blocks)
        with CheckpointJournal(
            checkpoint, fingerprint=fingerprint, fleet_size=len(blocks)
        ) as journal:
            journal.verify_entry_keys(blocks)
            for position, explanation in journal.completed.items():
                results[position] = explanation
            self.checkpoint_skips += journal.skipped
            for position, (block, stream) in enumerate(zip(blocks, streams)):
                if results[position] is not None:
                    continue
                if cancel is not None:
                    cancel.check()
                explanation = _search_block(
                    self.model, block, self.config, stream, None, cancel
                )
                journal.record(position, block, explanation)
                results[position] = explanation
                self.explanations_produced += 1
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------- sharding

    def _shard_plan(
        self, blocks: Sequence[BasicBlock], shards: Union[int, str, None]
    ) -> Optional[List[List[int]]]:
        """Partition fleet positions into shards (``None`` = stay sequential).

        Blocks are grouped by content key and whole groups are dealt
        round-robin across shards in first-occurrence order; positions inside
        a shard stay ascending.  Keeping a key's occurrences together is what
        makes sharded output bit-for-bit equal to the serial loop: the first
        occurrence fills the population record, later ones reuse it, exactly
        as they would have serially.
        """
        if shards is None:
            return None
        if isinstance(shards, str):
            if shards.strip().lower() != "auto":
                raise BackendError(
                    f"shards must be an integer, 'auto' or None, got {shards!r}"
                )
            requested = self.backend.workers
        else:
            requested = int(shards)
        if requested <= 1 or len(blocks) <= 1:
            return None
        groups: "OrderedDict[tuple, List[int]]" = OrderedDict()
        for position, block in enumerate(blocks):
            groups.setdefault(block.key(), []).append(position)
        count = min(requested, len(groups))
        if count <= 1:
            return None
        plan: List[List[int]] = [[] for _ in range(count)]
        for group_index, positions in enumerate(groups.values()):
            plan[group_index % count].extend(positions)
        for shard in plan:
            shard.sort()
        return plan

    def _run_shards_inprocess(
        self,
        shard_lists: List[List[_ShardItem]],
        cancel: Optional[CancelToken] = None,
    ) -> List[Tuple[int, Explanation]]:
        """Run shards on session-owned threads (sharing the query cache).

        A dedicated executor — not the backend's own pool — carries the
        shards: a shard's searches fan their query batches out through the
        backend, and routing both levels through one thread pool would let
        shards occupy every worker and deadlock waiting for their own query
        tasks.  Shard threads are cheap next to the seconds of search work
        they carry.  The shared cache is safe (it locks internally and hits
        never change values); population records are shard-local via
        :func:`_explain_shard`, see there.
        """

        def run(shard: List[_ShardItem]) -> List[Tuple[int, Explanation]]:
            return _explain_shard(self.model, self.config, shard, cancel)

        with ThreadPoolExecutor(max_workers=len(shard_lists)) as executor:
            shard_results = list(executor.map(run, shard_lists))
        return [pair for shard_result in shard_results for pair in shard_result]

    def global_explainer(self, blocks: Sequence[BasicBlock], **kwargs):
        """A :class:`~repro.globalx.global_explainer.GlobalExplainer` whose
        block-set scoring runs through this session's cached, backend-driven
        model (one batched query for the whole dataset)."""
        from repro.globalx.global_explainer import GlobalExplainer

        self._check_open()
        return GlobalExplainer(self.model, blocks, **kwargs)

    # ----------------------------------------------------------------- stats

    def stats(self) -> SessionStats:
        """Accounting since the session started (inner-model work only)."""
        hits = self.model.hits - self._hit_base
        misses = self.model.misses - self._miss_base
        lookups = hits + misses
        worker = self.backend.worker_stats()
        perturb = perturb_tally().delta(self._perturb_base)
        encoded = encoded_tally().delta(self._encoded_base)
        return SessionStats(
            explanations=self.explanations_produced,
            model_queries=self.model.query_count - self._query_base,
            cache_hits=hits,
            cache_misses=misses,
            cache_hit_rate=hits / lookups if lookups else 0.0,
            populations_cached=len(self._records),
            backend=self.backend.describe(),
            worker_restarts=worker.get("restarts", 0),
            worker_retries=worker.get("retries", 0),
            worker_fallbacks=worker.get("fallbacks", 0),
            checkpoint_skips=self.checkpoint_skips,
            result_cache=(
                self.result_cache.stats() if self.result_cache is not None else None
            ),
            perturbations=perturb.perturbations,
            perturb_fallbacks=perturb.fallbacks,
            plan_cache_entries=plan_cache_entries(),
            encoded_rows=encoded.encoded,
            materialized_rows=encoded.materialized,
        )

    # ------------------------------------------------------------- lifecycle

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise BackendError("this explanation session has been closed")

    def close(self) -> None:
        """Release the session's backend (if it owns one).  Idempotent.

        A caller-owned backend instance stays installed on the model — the
        caller selected that substrate for the model's lifetime, and the
        session merely borrowed it for the run.
        """
        if self._closed:
            return
        if self._owns_backend:
            self.model.set_backend(None)
            self.backend.close()
        if self._owns_result_cache and self.result_cache is not None:
            self.result_cache.close()
        self._records.clear()
        self._closed = True

    def __enter__(self) -> "ExplanationSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
