"""The execution substrate of the explanation runtime.

COMET's workload — thousands of independent cost-model queries per
explanation — is separable from *how* those queries execute: inline, across
threads, or across processes.  The seed implementation buried that decision
in an ad-hoc ``ThreadPoolExecutor`` inside ``CostModel``; this module pulls
it out into an explicit :class:`ExecutionBackend` interface so every layer
(models, explainer, evaluation harnesses, CLI, benchmarks) selects the
substrate the same way.

Three backends are provided:

* :class:`SerialBackend` — in-process, in-order.  The default; zero overhead
  and trivially deterministic.
* :class:`ThreadBackend` — a shared thread pool.  Useful when the model
  releases the GIL (numpy-heavy models) or performs blocking I/O; pure-Python
  simulators gain little because the GIL serialises them.
* :class:`ProcessBackend` — a process pool that escapes the GIL.  The cost
  model is shipped to each worker *once* (via the pool initializer) rather
  than per task, so per-batch IPC is just the blocks out and the floats back.

All backends preserve input order, so seeded explanations are bit-for-bit
identical across backends for deterministic models: the backend decides only
*where* a prediction runs, never *what* it computes.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, TypeVar, Union

from repro.utils.errors import BackendError

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable selecting the default backend (``serial`` when unset).
BACKEND_ENV_VAR = "REPRO_BACKEND"
#: Environment variable selecting the default worker count.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Anything accepted where a backend is expected: an instance, a short name,
#: or ``None`` for the environment-controlled default.
BackendSource = Union[None, str, "ExecutionBackend"]


@dataclass(frozen=True)
class BackendRetryPolicy:
    """How a supervised backend reacts to worker death.

    A process-pool worker that is OOM-killed or segfaults poisons the whole
    ``ProcessPoolExecutor``: every future call raises ``BrokenProcessPool``
    forever.  The supervised :class:`ProcessBackend` instead rebuilds the
    pool (re-installing the resident model) and retries the failed batch —
    deterministic models make the retry bit-for-bit equivalent to a run
    that never crashed.

    Parameters
    ----------
    max_restarts:
        Pool rebuilds allowed per batch before giving up.  ``0`` disables
        supervision (the first worker death raises).
    backoff:
        Base sleep before the first retry; doubles per attempt (capped at
        ``max_backoff``) so a crash-looping worker does not spin the host.
    max_backoff:
        Upper bound on one retry sleep, in seconds.
    fallback:
        What to do once restarts are exhausted: ``None`` (the default)
        raises :class:`~repro.utils.errors.BackendError` so CI and
        operators see hard failures, ``"serial"`` degrades gracefully by
        running the batch in-process — slower, but the request completes.
    """

    max_restarts: int = 2
    backoff: float = 0.05
    max_backoff: float = 2.0
    fallback: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff values must be >= 0")
        if self.fallback not in (None, "serial"):
            raise ValueError(
                f"fallback must be None or 'serial', got {self.fallback!r}"
            )

    def delay(self, attempt: int) -> float:
        """The capped-exponential sleep before retry number ``attempt``."""
        return min(self.backoff * (2**attempt), self.max_backoff)


def _default_workers() -> int:
    env = os.environ.get(WORKERS_ENV_VAR)
    if env:
        try:
            return max(int(env), 1)
        except ValueError as error:
            raise BackendError(
                f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
            ) from error
    return max(os.cpu_count() or 1, 1)


class ExecutionBackend(ABC):
    """Where and how batches of independent work items execute.

    The interface is deliberately small: an order-preserving
    :meth:`map_batch`, a model-aware :meth:`predict_blocks` fast path that
    backends may specialise (the process backend installs the model in each
    worker once), lifecycle management (:meth:`close`, context-manager
    support) and introspection (:attr:`workers`, :meth:`describe`).
    """

    #: Short name used by the CLI/config layer (``serial``/``thread``/...).
    name: str = "backend"

    #: Whether work dispatched to this backend runs in the caller's address
    #: space.  In-process backends (serial, thread) see — and may mutate —
    #: shared state such as a session's query cache and population records;
    #: the process backend ships copies to its workers, so callers that shard
    #: stateful work must pack everything a work item needs into the item.
    shares_memory: bool = True

    def __init__(self) -> None:
        self._closed = False

    # ------------------------------------------------------------- execution

    @abstractmethod
    def map_batch(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, returning results in input order."""

    def predict_blocks(self, model, blocks: Sequence) -> List[float]:
        """Evaluate ``model._predict`` over ``blocks`` (order-preserving).

        The generic implementation simply maps the bound method; backends
        with per-worker state (the process pool) override this to avoid
        re-shipping the model with every batch.
        """
        return self.map_batch(model._predict, blocks)

    def prepare_model(self, model) -> None:
        """Validate that ``model`` can execute on this backend.

        In-process backends accept anything; the process backend requires a
        picklable model and raises :class:`BackendError` early (at selection
        time) rather than deep inside the first refinement round.
        """

    # ------------------------------------------------------------- lifecycle

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release pooled resources.  Idempotent."""
        self._closed = True

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise BackendError(f"{self.name} backend has been closed")

    # ---------------------------------------------------------- introspection

    @property
    @abstractmethod
    def workers(self) -> int:
        """Degree of parallelism this backend can offer (1 for serial)."""

    def describe(self) -> str:
        """One-line description used in logs and benchmark reports."""
        return f"{self.name} (workers={self.workers})"

    def worker_stats(self) -> Dict[str, int]:
        """Failure-surface counters for this backend.

        In-process backends have no workers to lose, so the base
        implementation reports zeros; the supervised process backend
        overrides this with its real restart/retry/fallback tallies.
        """
        return {"workers": self.workers, "restarts": 0, "retries": 0, "fallbacks": 0}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"<{type(self).__name__} {self.describe()} [{state}]>"


class SerialBackend(ExecutionBackend):
    """In-process, in-order execution (the default substrate)."""

    name = "serial"

    def map_batch(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        self._check_open()
        return [fn(item) for item in items]

    @property
    def workers(self) -> int:
        return 1


class ThreadBackend(ExecutionBackend):
    """Thread-pool execution, sharing the interpreter (and its GIL).

    The pool is created lazily on first use — the refinement loop issues one
    batch per round, so per-call pool construction would dominate small
    batches — and released by :meth:`close` (fixing the seed implementation's
    leak, where the pool lived until interpreter shutdown).
    """

    name = "thread"

    def __init__(self, workers: Optional[int] = None) -> None:
        super().__init__()
        # None means "size to the machine"; explicit 0/1 means sequential
        # (matching the legacy batch_workers convention).
        self._workers = _default_workers() if workers is None else max(int(workers), 1)
        self._pool: Optional[ThreadPoolExecutor] = None
        # Concurrent shard threads may race the lazy pool construction
        # (block-sharded explain_many issues first batches simultaneously);
        # without the lock each racer would build — and leak — its own pool.
        self._pool_lock = threading.Lock()

    def map_batch(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        self._check_open()
        if len(items) <= 1 or self._workers <= 1:
            return [fn(item) for item in items]
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=self._workers)
            pool = self._pool
        return list(pool.map(fn, items))

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        super().close()

    @property
    def workers(self) -> int:
        return self._workers


# ---------------------------------------------------------------------------
# Process backend: worker-resident model.
#
# The model is pickled once and installed into every worker by the pool
# initializer; batches then ship only the blocks.  The functions below must be
# module-level so the (cheap) per-task callable pickles by reference.

_WORKER_MODEL = None


def _install_worker_model(payload: bytes) -> None:
    global _WORKER_MODEL
    _WORKER_MODEL = pickle.loads(payload)


def _worker_predict(block) -> float:
    return float(_WORKER_MODEL._predict(block))


class ProcessBackend(ExecutionBackend):
    """Process-pool execution: true parallelism for GIL-bound models.

    Simulator-style models (``uica``, ``port-pressure``) do substantial pure
    Python work per block, so threads cannot run them concurrently.  This
    backend fans batches out across worker processes; the model travels to
    each worker once, at pool (re)construction, and stays resident.

    Requirements: the model must be picklable (rules out ``CallableCostModel``
    wrappers around lambdas/closures — :meth:`prepare_model` reports this with
    an actionable error) and ``_predict`` must be deterministic, which every
    bundled model satisfies.  Worker-side ``query_count`` drift is invisible:
    accounting happens in the parent's ``predict_batch``.

    The backend is *supervised*: a worker death (OOM kill, segfault) breaks
    the whole pool, but instead of surfacing ``BrokenProcessPool`` to the
    explanation loop — which would poison every later request through this
    backend — the pool is rebuilt (re-installing the resident model) and the
    failed batch retried under the :class:`BackendRetryPolicy`.  Retries are
    whole-batch and the models are deterministic, so a recovered run is
    bit-for-bit identical to one that never crashed.  Restart, retry and
    fallback tallies are surfaced via :meth:`worker_stats`.
    """

    name = "process"
    shares_memory = False

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        retry: Optional[BackendRetryPolicy] = None,
    ) -> None:
        super().__init__()
        self._workers = _default_workers() if workers is None else max(int(workers), 1)
        self._pool: Optional[ProcessPoolExecutor] = None
        # Strong reference to the model the pool workers hold resident; also
        # prevents id-reuse confusion if the caller drops their reference.
        self._bound_model = None
        self.retry_policy = retry if retry is not None else BackendRetryPolicy()
        # Failure-surface counters (worker_stats); guarded by a lock because
        # concurrent shard threads may fan batches through one backend.
        self._stats_lock = threading.Lock()
        self._restarts = 0
        self._retries = 0
        self._fallbacks = 0

    # ------------------------------------------------------------- validation

    @staticmethod
    def _pickle_model(model) -> bytes:
        try:
            return pickle.dumps(model)
        except Exception as error:
            raise BackendError(
                f"cost model {getattr(model, 'name', model)!r} is not picklable "
                f"and cannot run on the process backend ({error}); use the "
                f"serial or thread backend, or make the model's callable a "
                f"module-level function"
            ) from error

    def prepare_model(self, model) -> None:
        self._pickle_model(model)

    # -------------------------------------------------------------- execution

    def _chunksize(self, count: int) -> int:
        # A few chunks per worker balances scheduling against IPC overhead.
        return max(1, count // (self._workers * 4))

    def map_batch(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Generic map: ``fn`` must be picklable (module-level)."""
        self._check_open()
        if len(items) <= 1 or self._workers <= 1:
            return [fn(item) for item in items]
        return self._supervised(
            lambda: list(
                self._generic_pool().map(
                    fn, items, chunksize=self._chunksize(len(items))
                )
            ),
            lambda: [fn(item) for item in items],
        )

    def predict_blocks(self, model, blocks: Sequence) -> List[float]:
        self._check_open()
        if len(blocks) <= 1 or self._workers <= 1:
            return [float(model._predict(block)) for block in blocks]
        return self._supervised(
            lambda: list(
                self._model_pool(model).map(
                    _worker_predict, blocks, chunksize=self._chunksize(len(blocks))
                )
            ),
            lambda: [float(model._predict(block)) for block in blocks],
        )

    # ------------------------------------------------------------ supervision

    def _supervised(self, run: Callable[[], List[R]], serial: Callable[[], List[R]]) -> List[R]:
        """Run one batch, restarting the pool on worker death.

        ``run`` acquires its pool lazily on every attempt (``_model_pool`` /
        ``_generic_pool`` rebuild a pool that was shut down), so each retry
        starts from a fresh worker fleet with the model re-installed.  After
        ``max_restarts`` rebuilds the policy decides: raise a
        :class:`~repro.utils.errors.BackendError` (default — failures stay
        loud) or degrade to ``serial``, the in-process fallback.
        """
        policy = self.retry_policy
        attempt = 0
        while True:
            try:
                return run()
            except BrokenProcessPool as error:
                # The pool is unusable no matter what happens next; tear it
                # down so the next attempt (or the next caller) rebuilds.
                self._shutdown_pool()
                if attempt >= policy.max_restarts:
                    if policy.fallback == "serial":
                        with self._stats_lock:
                            self._fallbacks += 1
                        return serial()
                    raise BackendError(
                        f"process-pool worker died and the pool could not be "
                        f"restored after {policy.max_restarts} restart(s); "
                        f"set BackendRetryPolicy(fallback='serial') to degrade "
                        f"to in-process execution instead ({error})"
                    ) from error
                with self._stats_lock:
                    self._restarts += 1
                    self._retries += 1
                time.sleep(policy.delay(attempt))
                attempt += 1

    def worker_stats(self) -> Dict[str, int]:
        """Restart/retry/fallback counters accumulated over this backend's life."""
        with self._stats_lock:
            return {
                "workers": self._workers,
                "restarts": self._restarts,
                "retries": self._retries,
                "fallbacks": self._fallbacks,
            }

    # ----------------------------------------------------------------- pools

    def _generic_pool(self) -> ProcessPoolExecutor:
        """A pool bound to no model (rebuilds a model-bound pool if needed)."""
        if self._pool is not None and self._bound_model is not None:
            self._shutdown_pool()
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._workers)
            self._bound_model = None
        return self._pool

    def _model_pool(self, model) -> ProcessPoolExecutor:
        """A pool whose workers hold ``model`` resident."""
        if self._pool is not None and self._bound_model is not model:
            self._shutdown_pool()
        if self._pool is None:
            payload = self._pickle_model(model)
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers,
                initializer=_install_worker_model,
                initargs=(payload,),
            )
            self._bound_model = model
        return self._pool

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._bound_model = None

    def close(self) -> None:
        self._shutdown_pool()
        super().close()

    @property
    def workers(self) -> int:
        return self._workers


# ---------------------------------------------------------------------------
# Resolution


def available_backends() -> tuple:
    """Short names accepted by :func:`resolve_backend` (and the CLI)."""
    return ("serial", "thread", "process")


def resolve_backend(
    source: BackendSource = None, workers: Optional[int] = None
) -> ExecutionBackend:
    """Normalise ``source`` into an :class:`ExecutionBackend`.

    ``None`` consults the ``REPRO_BACKEND`` environment variable and falls
    back to the serial backend; strings name a backend kind; an existing
    backend instance is returned as-is (``workers`` must then be omitted).
    """
    if isinstance(source, ExecutionBackend):
        if workers is not None:
            raise BackendError(
                "cannot override workers on an already-constructed backend"
            )
        return source
    if source is None:
        source = os.environ.get(BACKEND_ENV_VAR) or "serial"
    key = str(source).strip().lower()
    if key == "serial":
        return SerialBackend()
    if key in ("thread", "threads"):
        return ThreadBackend(workers)
    if key in ("process", "processes"):
        return ProcessBackend(workers)
    raise BackendError(
        f"unknown execution backend {source!r}; available: {available_backends()}"
    )
