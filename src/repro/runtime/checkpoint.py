"""Crash-safe checkpointing for corpus-scale ``explain_many`` runs.

A corpus sweep — thousands of blocks through one warm session — can run for
hours; losing the whole run to an OOM kill at block 9,900 is what the
ROADMAP's "stream/checkpoint so a corpus-scale run survives interruption"
item is about.  This module implements the journal behind
``ExplanationSession.explain_many(checkpoint=path)``:

* **An append-only JSONL journal.**  Each completed explanation is appended
  as one self-contained line — position in the fleet, its per-position
  content key, a human-readable summary, and a pickled payload that
  round-trips the :class:`~repro.explain.explanation.Explanation` object
  bit-for-bit.  Lines are flushed and fsynced as they are written, so a
  crash loses at most the explanation in flight; a torn final line (the
  crash landed mid-write) is detected and ignored on replay.
* **An atomically-renamed manifest.**  The journal is only meaningful for
  one exact run: same blocks, model, microarchitecture, explainer config
  and seed.  That identity is hashed into a manifest written via
  write-to-temp-then-``os.replace`` (atomic on POSIX), and a journal whose
  manifest does not match the resuming run is discarded rather than
  half-trusted — stale results never leak into a different run.
* **Bit-for-bit resume.**  ``explain_many`` spawns one independent random
  stream per fleet position, so skipping already-journaled positions cannot
  change what the remaining positions compute: an interrupted-and-resumed
  run is bit-for-bit identical to an uninterrupted one (pinned in
  ``tests/runtime/test_checkpoint.py``).

The journal requires an *integer* seed: resuming a run driven by a live
``Generator`` object is unreproducible by construction (its state advanced
with the crash), and refusing loudly beats silently journaling results that
can never be matched again.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.explain.explanation import Explanation
from repro.utils.errors import CheckpointError

#: Manifest schema version: bump when the journal format changes so old
#: journals are discarded instead of misread.
JOURNAL_VERSION = 1


def run_fingerprint(
    *,
    blocks: Sequence,
    model_name: str,
    uarch: str,
    config,
    seed: int,
    shards_normalised: str,
) -> str:
    """The identity of one checkpointable run, as a stable hex digest.

    Everything that can change a result is hashed: the exact fleet (keys in
    order — position matters because each position has its own spawned
    stream), the model and microarchitecture, the explainer configuration
    and the run seed.  ``shards_normalised`` is included descriptively;
    sharding is result-neutral but recording it makes manifests
    self-describing.
    """
    hasher = hashlib.sha256()
    hasher.update(f"v{JOURNAL_VERSION}|{model_name}|{uarch}|{seed}|".encode())
    hasher.update(repr(config).encode("utf-8"))
    hasher.update(f"|{shards_normalised}|".encode())
    for block in blocks:
        hasher.update(repr(block.key()).encode("utf-8"))
        hasher.update(b";")
    return hasher.hexdigest()


def _entry_key(position: int, block) -> str:
    """The per-entry key: run-relative position plus block content digest."""
    digest = hashlib.sha256(repr(block.key()).encode("utf-8")).hexdigest()[:16]
    return f"{position}:{digest}"


class CheckpointJournal:
    """One run's journal: a manifest plus an append-only JSONL result log.

    Parameters
    ----------
    path:
        The journal file (JSON lines).  The manifest lives next to it at
        ``<path>.manifest``; parent directories are created as needed.
    fingerprint:
        The :func:`run_fingerprint` of the run this journal belongs to.
    fleet_size:
        Number of blocks in the fleet (sanity-checked on resume).

    Opening the journal decides resume-vs-fresh: a matching manifest replays
    every intact journal line (``completed`` maps fleet positions to their
    recovered explanations), anything else — no manifest, mismatched
    fingerprint, old version — truncates the journal and writes a fresh
    manifest atomically.
    """

    def __init__(self, path, *, fingerprint: str, fleet_size: int) -> None:
        self.path = Path(path)
        self.manifest_path = Path(str(path) + ".manifest")
        self.fingerprint = fingerprint
        self.fleet_size = fleet_size
        self.completed: Dict[int, Explanation] = {}
        self.skipped = 0
        self._expected_keys: Dict[int, str] = {}
        self._handle = None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self._manifest_matches():
            self._replay()
        else:
            self._start_fresh()
        # Append mode: resumed runs must not clobber recovered entries.
        self._handle = self.path.open("a", encoding="utf-8")
        self.skipped = len(self.completed)

    # ------------------------------------------------------------------ open

    def _manifest_matches(self) -> bool:
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            return False
        return (
            isinstance(manifest, dict)
            and manifest.get("version") == JOURNAL_VERSION
            and manifest.get("fingerprint") == self.fingerprint
            and manifest.get("fleet_size") == self.fleet_size
        )

    def _start_fresh(self) -> None:
        """Truncate the journal, then atomically publish the manifest.

        Order matters for crash safety: the journal is emptied *before* the
        manifest names it, so a crash between the two steps leaves a
        manifest-less journal that the next open discards — never a
        manifest blessing stale entries.
        """
        self.path.write_text("")
        payload = json.dumps(
            {
                "version": JOURNAL_VERSION,
                "fingerprint": self.fingerprint,
                "fleet_size": self.fleet_size,
            },
            indent=2,
        )
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.manifest_path.parent),
            prefix=self.manifest_path.name + ".",
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.manifest_path)
        except OSError as error:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise CheckpointError(
                f"cannot write checkpoint manifest {self.manifest_path}: {error}"
            ) from error

    def _replay(self) -> None:
        """Load every intact journal line; tolerate a torn final line."""
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        for line_number, line in enumerate(raw.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                position = int(entry["position"])
                key = str(entry["key"])
                blob = base64.b64decode(entry["payload"])
                explanation = pickle.loads(blob)
            except Exception:  # noqa: BLE001 - a torn tail is expected after a crash
                # Anything undecodable past here is the crash frontier:
                # journal appends are strictly ordered, so stop replaying.
                break
            if not isinstance(explanation, Explanation):
                break
            if position in self.completed:
                continue  # an interrupted rewrite double-journaled; first wins
            if not 0 <= position < self.fleet_size:
                raise CheckpointError(
                    f"journal {self.path} line {line_number} names position "
                    f"{position}, outside the fleet of {self.fleet_size}"
                )
            self.completed[position] = explanation
            self._expected_keys[position] = key

    def verify_entry_keys(self, blocks: Sequence) -> None:
        """Cross-check recovered entries against the resuming fleet.

        The manifest fingerprint already pins the whole run, so a mismatch
        here means the journal was hand-edited or corrupted in a way that
        kept JSON intact — refuse rather than return wrong explanations.
        """
        for position, key in self._expected_keys.items():
            if key != _entry_key(position, blocks[position]):
                raise CheckpointError(
                    f"journal {self.path} entry for position {position} does "
                    f"not match the block at that position; the journal "
                    f"belongs to a different fleet"
                )

    # ---------------------------------------------------------------- record

    def record(self, position: int, block, explanation: Explanation) -> None:
        """Append one completed explanation, flushed and fsynced.

        The pickled payload is what resume returns (bit-for-bit); the
        summary fields ride along so a human (or ``jq``) can watch a run's
        progress without unpickling anything.
        """
        assert self._handle is not None
        blob = base64.b64encode(pickle.dumps(explanation)).decode("ascii")
        line = json.dumps(
            {
                "position": position,
                "key": _entry_key(position, block),
                "precision": explanation.precision,
                "coverage": explanation.coverage,
                "num_features": len(explanation.features),
                "payload": blob,
            }
        )
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
