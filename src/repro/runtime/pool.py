"""A leased LRU pool of warm :class:`ExplanationSession` instances.

The explanation service originally kept its per-(model, microarch) sessions
in a private ``OrderedDict`` inside the dispatcher loop — workable with one
dispatcher, where "in use" and "being dispatched" were the same thing.  With
several dispatchers leasing sessions concurrently, eviction needs real
bookkeeping: the least-recently-used session must only be *closed* once
nobody is running a request on it.  :class:`SessionPool` owns exactly that:

* **lease / release.**  :meth:`lease` returns the warm session for a key,
  building it through the pool's factory on a miss, and pins it against
  eviction until the matching :meth:`release` (or use the
  :meth:`leased` context manager).  Leases are counted, so concurrent
  callers of one key are fine — though callers that need *result*
  determinism must still serialize their use of a session themselves (the
  scheduler's per-key mutual exclusion does this for the service).
* **LRU with deferred eviction.**  The pool keeps at most ``max_sessions``
  sessions; overflow evicts the least recently leased *idle* session.  A
  session that is still leased is marked for eviction and closed by the
  final release instead — the pool may transiently hold more than
  ``max_sessions`` entries rather than ever closing a session under a
  running request.
* **Occupancy stats.**  :meth:`stats` snapshots size, live leases, build /
  hit / eviction counters; :meth:`session_stats` relays the per-session
  accounting the service's ``stats`` op reports.

The pool owns every session it builds and closes them on :meth:`close`;
sessions are built outside the pool lock (construction can cost seconds for
simulator models) with per-key placeholders so concurrent leases of one key
build once and share.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.runtime.session import ExplanationSession, SessionStats
from repro.utils.errors import BackendError

#: Builds the session serving one (model, microarch) pair.
SessionFactory = Callable[[str, str], ExplanationSession]

#: The pool's key space: (model name, microarchitecture name).
SessionKey = Tuple[str, str]


@dataclass(frozen=True)
class PoolStats:
    """Occupancy snapshot of one :class:`SessionPool`."""

    sessions: int
    max_sessions: int
    leased: int
    builds: int
    hits: int
    evictions: int

    @property
    def occupancy(self) -> float:
        """Resident sessions as a fraction of capacity (may exceed 1.0
        transiently while evicted-but-leased sessions finish)."""
        return self.sessions / self.max_sessions

    def describe(self) -> str:
        return (
            f"{self.sessions}/{self.max_sessions} sessions resident "
            f"({self.leased} leased), {self.builds} built, "
            f"{self.hits} warm hits, {self.evictions} evicted"
        )


class _Entry:
    """One pooled session plus its lease bookkeeping."""

    __slots__ = ("session", "leases", "evicted", "built")

    def __init__(self) -> None:
        self.session: Optional[ExplanationSession] = None
        self.leases = 0
        self.evicted = False
        #: Set once ``session`` is populated (or the build failed and the
        #: entry was removed); later leases of a key being built wait here.
        self.built = threading.Event()


class SessionPool:
    """LRU pool of per-(model, microarch) sessions with counted leases.

    Parameters
    ----------
    factory:
        Builds the session for one key; called outside the pool lock.
    max_sessions:
        How many sessions stay warm; the least recently leased idle session
        is closed when the pool overflows (leased sessions are closed by
        their final release instead).

    Use standalone over the registry, or through the explanation service::

        with SessionPool.from_registry(config=config, backend="process") as pool:
            with pool.leased("uica", "hsw") as session:
                explanation = session.explain(block, rng=0)
    """

    def __init__(self, factory: SessionFactory, *, max_sessions: int = 4) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self._factory = factory
        self.max_sessions = max_sessions
        self._entries: "OrderedDict[SessionKey, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        self._closed = False
        self._builds = 0
        self._hits = 0
        self._evictions = 0

    @classmethod
    def from_registry(cls, *, max_sessions: int = 4, **session_kwargs) -> "SessionPool":
        """A pool whose sessions come from :func:`repro.models.registry.build_session`
        (``session_kwargs``: ``config``/``backend``/``workers``/``cache_entries``...)."""
        from repro.models.registry import build_session

        def factory(model_name: str, uarch: str) -> ExplanationSession:
            return build_session(model_name, uarch, **session_kwargs)

        return cls(factory, max_sessions=max_sessions)

    # ------------------------------------------------------------ lease/release

    def lease(self, model: str, uarch: str) -> ExplanationSession:
        """The warm session for ``(model, uarch)``, pinned until released.

        Builds through the factory on a miss; a build failure propagates to
        every caller waiting on that key and leaves the pool unchanged.
        """
        key = (model, uarch)
        hit: Optional[ExplanationSession] = None
        evicted_now: List[ExplanationSession] = []
        while True:
            with self._lock:
                if self._closed:
                    raise BackendError("this session pool has been closed")
                entry = self._entries.get(key)
                if entry is None:
                    entry = _Entry()
                    entry.leases = 1
                    self._entries[key] = entry
                    break  # we build it, below
                if entry.built.is_set():
                    self._hits += 1
                    entry.leases += 1
                    self._entries.move_to_end(key)
                    if entry.evicted:
                        # A deferred eviction being leased again is hot, not
                        # doomed: resurrect it (the mark never completed, so
                        # un-count it) and pick another victim instead.
                        entry.evicted = False
                        self._evictions -= 1
                        self._evict_overflow_locked(evicted_now)
                    hit = entry.session
                    assert hit is not None
                    break
            # Another caller is building this key; wait outside the lock and
            # retry (the entry vanishes again if that build failed).
            entry.built.wait()
        if hit is not None:
            for old in evicted_now:
                old.close()
            return hit
        try:
            session = self._factory(model, uarch)
        except BaseException:
            with self._lock:
                self._entries.pop(key, None)
            entry.built.set()  # wake waiters; they retry and rebuild
            raise
        evicted: List[ExplanationSession] = []
        with self._lock:
            closed = self._closed
            if closed:
                # close() ran mid-build and could not see this session yet;
                # nothing may escape a closed pool.
                self._entries.pop(key, None)
            else:
                entry.session = session
                self._builds += 1
                self._evict_overflow_locked(evicted)
        entry.built.set()
        if closed:
            session.close()
            raise BackendError("this session pool has been closed")
        for old in evicted:
            old.close()
        return session

    def release(self, model: str, uarch: str) -> None:
        """Drop one lease on ``(model, uarch)`` (closes it if evicted + idle)."""
        key = (model, uarch)
        to_close: Optional[ExplanationSession] = None
        evicted: List[ExplanationSession] = []
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.leases < 1:
                if self._closed:
                    return  # close() already released everything; harmless
                raise BackendError(f"session {key!r} is not leased from this pool")
            entry.leases -= 1
            if entry.evicted and entry.leases == 0:
                # Deferred eviction: the pool overflowed while this session
                # was running a request; the final release closes it.
                self._entries.pop(key, None)
                to_close = entry.session
            else:
                self._evict_overflow_locked(evicted)
        if to_close is not None:
            to_close.close()
        for old in evicted:
            old.close()

    @contextmanager
    def leased(self, model: str, uarch: str) -> Iterator[ExplanationSession]:
        """Context-managed :meth:`lease` / :meth:`release` pair."""
        session = self.lease(model, uarch)
        try:
            yield session
        finally:
            self.release(model, uarch)

    def _evict_overflow_locked(self, evicted: List[ExplanationSession]) -> None:
        """Shrink back to capacity, least recently leased first.

        Idle sessions are popped for the caller to close outside the lock;
        leased ones are only *marked* — their final release closes them.
        Marked entries are logically gone already and do not count against
        capacity (counting them would evict their replacements next).
        """
        over = (
            sum(1 for e in self._entries.values() if not e.evicted)
            - self.max_sessions
        )
        if over <= 0:
            return
        for key in list(self._entries):
            if over <= 0:
                break
            entry = self._entries[key]
            if entry.evicted or not entry.built.is_set():
                continue
            if entry.leases == 0:
                self._entries.pop(key)
                if entry.session is not None:
                    evicted.append(entry.session)
                self._evictions += 1
                over -= 1
            else:
                entry.evicted = True
                self._evictions += 1
                over -= 1

    # ----------------------------------------------------------------- stats

    def stats(self) -> PoolStats:
        """Occupancy snapshot (sessions resident, leases live, counters)."""
        with self._lock:
            return self._stats_locked()

    def _stats_locked(self) -> PoolStats:
        return PoolStats(
            sessions=len(self._entries),
            max_sessions=self.max_sessions,
            leased=sum(1 for e in self._entries.values() if e.leases > 0),
            builds=self._builds,
            hits=self._hits,
            evictions=self._evictions,
        )

    def snapshot(
        self,
    ) -> Tuple[Tuple[SessionKey, ...], PoolStats, Dict[SessionKey, SessionStats]]:
        """Keys, occupancy and per-session stats from *one* lock hold.

        Composing :meth:`keys`/:meth:`stats`/:meth:`session_stats` takes
        three separate locks, so a racing build or eviction could make the
        pieces disagree (a key listed with no matching occupancy count);
        capacity-accounting consumers — the service's ``stats`` op — read
        this consistent view instead.
        """
        with self._lock:
            keys = tuple(self._entries)
            stats = self._stats_locked()
            sessions = {
                key: entry.session
                for key, entry in self._entries.items()
                if entry.session is not None
            }
        session_stats = {
            key: session.stats()
            for key, session in sessions.items()
            if not session.closed
        }
        return keys, stats, session_stats

    def session_stats(self) -> Dict[SessionKey, SessionStats]:
        """Per-session accounting for every live, built session."""
        with self._lock:
            sessions = {
                key: entry.session
                for key, entry in self._entries.items()
                if entry.session is not None
            }
        return {
            key: session.stats()
            for key, session in sessions.items()
            if not session.closed
        }

    def keys(self) -> Tuple[SessionKey, ...]:
        """The resident session keys, least recently leased first."""
        with self._lock:
            return tuple(self._entries)

    # ------------------------------------------------------------- lifecycle

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close every pooled session.  Idempotent.

        Idle sessions close immediately.  A session under a live lease is
        never closed mid-request — it is marked like a deferred eviction
        and its final :meth:`release` closes it — so a library caller
        sharing the pool cannot have a running explanation killed under it
        (the service itself joins its dispatchers before closing the pool,
        so its leases are already gone).  A straggling release after close
        is harmless.
        """
        to_close: List[ExplanationSession] = []
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for key in list(self._entries):
                entry = self._entries[key]
                if entry.leases == 0:
                    self._entries.pop(key)
                    if entry.session is not None:
                        to_close.append(entry.session)
                else:
                    entry.evicted = True
        for session in to_close:
            session.close()

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
