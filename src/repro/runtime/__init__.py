"""The explanation runtime: execution backends and shared-state sessions.

This package separates COMET's *workload* (the anchor search and its
cost-model queries) from its *execution substrate*:

* :mod:`repro.runtime.backend` — where batches of independent work run
  (:class:`SerialBackend`, :class:`ThreadBackend`, :class:`ProcessBackend`),
* :mod:`repro.runtime.session` — :class:`ExplanationSession`, which owns the
  state shared across one explanation run: the cache wrapper, the execution
  backend, and the per-block background populations reused across anchor beam
  levels and repeated explanations,
* :mod:`repro.runtime.pool` — :class:`SessionPool`, a leased LRU pool of
  warm sessions keyed by (model, microarch), shared by the explanation
  service's dispatcher fleet and library callers alike.

``ExplanationSession`` and ``SessionPool`` are imported lazily (PEP 562):
the session layer sits on top of :mod:`repro.explain`, which itself builds
on models that import this package for backend support.
"""

from repro.runtime.backend import (
    BACKEND_ENV_VAR,
    WORKERS_ENV_VAR,
    BackendSource,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    resolve_backend,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "WORKERS_ENV_VAR",
    "BackendSource",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "available_backends",
    "resolve_backend",
    "ExplanationSession",
    "SessionStats",
    "SessionPool",
    "PoolStats",
]

_LAZY_SESSION = ("ExplanationSession", "SessionStats")
_LAZY_POOL = ("SessionPool", "PoolStats")


def __getattr__(name):
    if name in _LAZY_SESSION:
        from repro.runtime import session

        return getattr(session, name)
    if name in _LAZY_POOL:
        from repro.runtime import pool

        return getattr(pool, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
