"""Exception hierarchy for the COMET reproduction.

All library-specific exceptions derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while still being able
to distinguish parsing problems from perturbation or model failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ParseError(ReproError):
    """Raised when an assembly string cannot be parsed as Intel-syntax x86."""

    def __init__(self, text: str, reason: str) -> None:
        self.text = text
        self.reason = reason
        super().__init__(f"cannot parse {text!r}: {reason}")


class ValidationError(ReproError):
    """Raised when an instruction or basic block violates ISA constraints."""


class UnknownOpcodeError(ReproError):
    """Raised when an opcode is not present in the opcode database."""

    def __init__(self, mnemonic: str) -> None:
        self.mnemonic = mnemonic
        super().__init__(f"unknown opcode: {mnemonic!r}")


class UnknownRegisterError(ReproError):
    """Raised when a register name is not present in the register file."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"unknown register: {name!r}")


class PerturbationError(ReproError):
    """Raised when the perturbation algorithm cannot produce a valid block."""


class ModelError(ReproError):
    """Raised when a cost model cannot produce a prediction for a block."""


class BackendError(ReproError):
    """Raised when an execution backend cannot run the requested workload."""


class CheckpointError(ReproError):
    """Raised when a checkpoint journal cannot be read, written or resumed."""


class CacheError(ReproError):
    """Raised when a persistent result-cache store cannot be opened, read or
    written — a wrong-format file, a corrupt entry whose checksum fails, or a
    failed append.  A corrupt store is *refused* with this type, never
    silently served."""


class ServiceError(ReproError):
    """Raised when the explanation service cannot accept or serve a request."""


class QueueFullError(ServiceError):
    """Raised when a non-blocking submit hits the service's bounded queue."""


class ServiceClosedError(ServiceError):
    """Raised when a request reaches a service that has been shut down."""


class ServiceTimeoutError(ServiceError):
    """Raised when a client-side wait (``result(timeout=...)``) expires.

    Distinct from the server-side deadline family below: the request may
    still be queued or running — only *this caller's patience* ran out, and
    the result stays collectable.
    """


class RequestCancelledError(ServiceError):
    """Raised inside a request whose :class:`~repro.utils.cancellation.CancelToken`
    was cancelled (client abandoned it); the service reports the request as
    cancelled and frees its dispatcher and session key."""


class DeadlineExceededError(ServiceError):
    """Raised when a request's server-side deadline expires — either while
    still queued (failed fast, no session touched) or cooperatively between
    KL-LUCB rounds while running."""
