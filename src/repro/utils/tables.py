"""Plain-text rendering helpers for experiment tables and figure series.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that formatting in one place so every bench target produces
consistent, diff-able output.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def _fmt_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Render ``rows`` as a fixed-width text table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of rows; each row must have ``len(headers)`` entries.
    title:
        Optional title printed above the table.
    precision:
        Number of decimal places used for float cells.
    """
    str_rows = [[_fmt_cell(c, precision) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip()

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_series(
    name: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    x_label: str = "x",
    precision: int = 3,
) -> str:
    """Render figure-style data (one x axis, several named series) as text."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        row: list[object] = [x]
        for values in series.values():
            row.append(values[i] if i < len(values) else float("nan"))
        rows.append(row)
    return render_table(headers, rows, title=name, precision=precision)


def format_mean_std(mean: float, std: float, precision: int = 2) -> str:
    """Format a ``mean ± std`` cell the way the paper's tables do."""
    return f"{mean:.{precision}f} ± {std:.{precision}f}"
