"""Shared utilities: deterministic RNG handling, errors, and table rendering."""

from repro.utils.errors import (
    ReproError,
    ParseError,
    ValidationError,
    UnknownOpcodeError,
    UnknownRegisterError,
    PerturbationError,
    ModelError,
)
from repro.utils.rng import RandomSource, as_rng, spawn_rngs
from repro.utils.tables import render_table, render_series

__all__ = [
    "ReproError",
    "ParseError",
    "ValidationError",
    "UnknownOpcodeError",
    "UnknownRegisterError",
    "PerturbationError",
    "ModelError",
    "RandomSource",
    "as_rng",
    "spawn_rngs",
    "render_table",
    "render_series",
]
