"""Deterministic random-number handling.

Every stochastic component in the library (the perturbation algorithm, the
synthetic dataset generator, the neural model initialisation, the anchor
search) accepts either an integer seed, an existing
:class:`numpy.random.Generator`, or ``None``.  :func:`as_rng` normalises all
three into a ``Generator`` so experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

#: Anything accepted where a random source is expected.
RandomSource = Union[None, int, np.random.Generator]


def as_rng(source: RandomSource = None) -> np.random.Generator:
    """Normalise ``source`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    source:
        ``None`` for a non-deterministic generator, an ``int`` seed for a
        deterministic one, or an existing generator which is returned as-is.
    """
    if isinstance(source, np.random.Generator):
        return source
    if source is None:
        return np.random.default_rng()
    if isinstance(source, (int, np.integer)):
        return np.random.default_rng(int(source))
    raise TypeError(f"cannot build a random generator from {type(source)!r}")


def spawn_seeds(source: RandomSource, count: int) -> List[int]:
    """Draw the ``count`` integer child seeds ``source`` would spawn.

    This is the *identity* of each spawned stream: ``spawn_rngs`` builds its
    generators as ``default_rng(child_seed)``, so anything keyed on a child
    seed (checkpoint entries, result-cache fingerprints) names exactly the
    stream that position consumes.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    root = as_rng(source)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [int(s) for s in seeds]


def spawn_rngs(source: RandomSource, count: int) -> Sequence[np.random.Generator]:
    """Spawn ``count`` independent generators derived from ``source``.

    Used when an experiment is repeated across seeds (the paper reports means
    over 5 seeds): each repetition receives an independent stream so results
    do not depend on evaluation order.
    """
    return [np.random.default_rng(s) for s in spawn_seeds(source, count)]


def derive_seed(source: RandomSource, *salt: object) -> int:
    """Derive a stable integer seed from ``source`` and arbitrary salt values.

    Useful when a component needs a seed keyed on some identifier (e.g. one
    stream per basic block) without consuming state from the parent stream in
    an order-dependent way.
    """
    base = as_rng(source).integers(0, 2**31 - 1)
    mix = hash(tuple(str(s) for s in salt)) & 0x7FFFFFFF
    return int((int(base) ^ mix) & 0x7FFFFFFF)


def coin(rng: np.random.Generator, probability: float) -> bool:
    """Return ``True`` with the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    if probability == 0.0:
        return False
    if probability == 1.0:
        return True
    return bool(rng.random() < probability)


def choice(rng: np.random.Generator, items: Sequence, size: Optional[int] = None):
    """Uniformly choose from ``items`` without converting them to an array.

    ``numpy.random.Generator.choice`` coerces object sequences into arrays,
    which both is slow and mangles tuples; this helper indexes instead.
    """
    if len(items) == 0:
        raise ValueError("cannot choose from an empty sequence")
    if size is None:
        return items[int(rng.integers(0, len(items)))]
    idx = rng.integers(0, len(items), size=size)
    return [items[int(i)] for i in idx]
