"""Cooperative cancellation and deadlines for long-running requests.

An explanation is thousands of cost-model queries spread over many KL-LUCB
refinement rounds — seconds to minutes of work that, once started, the
serving stack previously had no way to stop: a client giving up on
``result(timeout=...)`` left the server burning a dispatcher and its warm
session on an answer nobody would read.

:class:`CancelToken` is the one object that threads through every layer —
``ExplanationService.submit(deadline=...)`` → scheduler ticket → dispatcher
→ ``ExplanationSession`` → :class:`~repro.explain.anchors.AnchorSearch` →
:class:`~repro.explain.precision.PrecisionEstimator` — and is *checked*, not
enforced: the search calls :meth:`CancelToken.check` between refinement
rounds (the natural unit of work between two batched model queries) and the
token raises :class:`~repro.utils.errors.RequestCancelledError` or
:class:`~repro.utils.errors.DeadlineExceededError` when the request should
stop.  Cooperative checking is what keeps cancellation determinism-safe: a
token that never fires never touches the random stream, so seeded results
are bit-for-bit unchanged by the plumbing.

Deadlines are absolute :func:`time.monotonic` instants (wall-clock jumps
must not expire requests); build one from a relative budget with
:meth:`CancelToken.with_timeout`.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.utils.errors import DeadlineExceededError, RequestCancelledError


class CancelToken:
    """A thread-safe cancel/deadline flag shared by one request's layers.

    Parameters
    ----------
    deadline:
        Absolute :func:`time.monotonic` instant after which the token is
        expired (``None`` = no deadline).
    name:
        Optional label (the service uses the request id) quoted in the
        errors the token raises, so a client can see *which* request died.

    The producer side (service, client plumbing) calls :meth:`cancel`; the
    consumer side (search loops) calls :meth:`check` at round boundaries.
    Both directions are idempotent and lock-protected; a token can only ever
    move from live to finished, never back.
    """

    __slots__ = ("_deadline", "_name", "_cancelled", "_reason", "_lock")

    def __init__(
        self, deadline: Optional[float] = None, *, name: Optional[str] = None
    ) -> None:
        self._deadline = deadline
        self._name = name
        self._cancelled = False
        self._reason: Optional[str] = None
        self._lock = threading.Lock()

    @classmethod
    def with_timeout(
        cls, seconds: Optional[float], *, name: Optional[str] = None
    ) -> "CancelToken":
        """A token expiring ``seconds`` from now (``None`` = never)."""
        if seconds is None:
            return cls(name=name)
        if seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds!r}")
        return cls(deadline=time.monotonic() + seconds, name=name)

    # ---------------------------------------------------------------- produce

    def cancel(self, reason: str = "request cancelled") -> None:
        """Mark the token cancelled.  Idempotent (the first reason wins)."""
        with self._lock:
            if not self._cancelled:
                self._cancelled = True
                self._reason = reason

    # ---------------------------------------------------------------- consume

    @property
    def name(self) -> Optional[str]:
        return self._name

    @property
    def cancelled(self) -> bool:
        """Explicitly cancelled (deadline expiry is :attr:`expired`)."""
        return self._cancelled

    @property
    def reason(self) -> Optional[str]:
        return self._reason

    @property
    def deadline(self) -> Optional[float]:
        """The absolute monotonic deadline (``None`` = no deadline)."""
        return self._deadline

    @property
    def expired(self) -> bool:
        return self._deadline is not None and time.monotonic() >= self._deadline

    @property
    def finished(self) -> bool:
        """Cancelled or expired — the request should stop either way."""
        return self._cancelled or self.expired

    def remaining(self) -> Optional[float]:
        """Seconds left until the deadline (``None`` = unbounded, 0 floor)."""
        if self._deadline is None:
            return None
        return max(self._deadline - time.monotonic(), 0.0)

    def check(self) -> None:
        """Raise if the request should stop; free otherwise.

        Raises :class:`RequestCancelledError` for explicit cancellation
        (checked first: a client that cancelled should see its own reason
        even if the deadline also lapsed while the request sat queued) and
        :class:`DeadlineExceededError` for deadline expiry.
        """
        if self._cancelled:
            label = f"request {self._name}" if self._name else "request"
            raise RequestCancelledError(f"{label} cancelled: {self._reason}")
        if self.expired:
            label = f"request {self._name}" if self._name else "request"
            raise DeadlineExceededError(
                f"{label} exceeded its deadline before completing"
            )
