"""Machine-level parameters for the modelled Intel micro-architectures.

Only the parameters that the pipeline simulator and analytical models consume
are described; the values follow publicly documented figures for Haswell and
Skylake closely enough to preserve the relative behaviour the paper relies on
(Skylake has a faster divider, slightly larger buffers and one extra
store-AGU-capable port).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

from repro.uarch.ports import PortSet, parse_ports
from repro.utils.errors import ReproError


@dataclass(frozen=True)
class MicroArchitecture:
    """Static description of one CPU micro-architecture.

    Attributes
    ----------
    name / short_name:
        Human-readable and table-key names (``"Haswell"`` / ``"hsw"``).
    issue_width:
        Maximum uops renamed/issued per cycle (the paper's baseline analytical
        model divides the instruction count by this number).
    ports:
        All execution ports.
    load_ports / store_data_ports / store_agu_ports:
        Ports usable by load uops, store-data uops and store-address uops.
    load_latency:
        L1 load-to-use latency in cycles.
    rob_size / scheduler_size / load_buffer_size / store_buffer_size:
        Out-of-order window resources.
    """

    name: str
    short_name: str
    issue_width: int
    retire_width: int
    ports: Tuple[str, ...]
    load_ports: PortSet
    store_data_ports: PortSet
    store_agu_ports: PortSet
    load_latency: int
    rob_size: int
    scheduler_size: int
    load_buffer_size: int
    store_buffer_size: int
    frontend_uops_per_cycle: int = 4

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            raise ValueError("issue_width must be positive")
        for pset in (self.load_ports, self.store_data_ports, self.store_agu_ports):
            unknown = pset - frozenset(self.ports)
            if unknown:
                raise ValueError(f"ports {sorted(unknown)} not in {self.ports}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


HASWELL = MicroArchitecture(
    name="Haswell",
    short_name="hsw",
    issue_width=4,
    retire_width=4,
    ports=("0", "1", "2", "3", "4", "5", "6", "7"),
    load_ports=parse_ports("23"),
    store_data_ports=parse_ports("4"),
    store_agu_ports=parse_ports("237"),
    load_latency=5,
    rob_size=192,
    scheduler_size=60,
    load_buffer_size=72,
    store_buffer_size=42,
)

SKYLAKE = MicroArchitecture(
    name="Skylake",
    short_name="skl",
    issue_width=4,
    retire_width=4,
    ports=("0", "1", "2", "3", "4", "5", "6", "7"),
    load_ports=parse_ports("23"),
    store_data_ports=parse_ports("4"),
    store_agu_ports=parse_ports("237"),
    load_latency=4,
    rob_size=224,
    scheduler_size=97,
    load_buffer_size=72,
    store_buffer_size=56,
)

_REGISTRY: Dict[str, MicroArchitecture] = {
    "hsw": HASWELL,
    "haswell": HASWELL,
    "skl": SKYLAKE,
    "skylake": SKYLAKE,
}


def get_microarch(name) -> MicroArchitecture:
    """Resolve a micro-architecture by name (``"hsw"``, ``"Skylake"``, ...).

    Passing an existing :class:`MicroArchitecture` returns it unchanged, so
    APIs can accept either form.
    """
    if isinstance(name, MicroArchitecture):
        return name
    key = str(name).strip().lower()
    if key not in _REGISTRY:
        raise ReproError(
            f"unknown microarchitecture {name!r}; "
            f"available: {sorted(set(_REGISTRY))}"
        )
    return _REGISTRY[key]


def available_microarchitectures() -> Tuple[str, ...]:
    """Short names of all modelled micro-architectures."""
    return ("hsw", "skl")
