"""Per-micro-architecture instruction cost tables (uops.info stand-in).

For each opcode the table records:

* ``latency`` — result latency in cycles (register-to-register form),
* ``throughput`` — reciprocal throughput in cycles per instruction when the
  instruction is executed back-to-back with no dependencies,
* ``uops`` — the compute micro-operations and the ports each may use.

Memory forms are derived on the fly by :func:`instruction_cost_for`, which
adds load/store uops and the micro-architecture's load latency when the
instruction has a memory operand.  The numbers are hand-written approximations
of public uops.info / Agner Fog data; they keep the relationships the paper's
evaluation depends on (division ≫ multiply ≫ simple ALU; Skylake's divider is
markedly faster than Haswell's; stores are the throughput bottleneck of
store-heavy blocks).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.isa.instructions import Instruction
from repro.isa.opcodes import OPCODES, opcode_spec
from repro.uarch.microarch import MicroArchitecture, get_microarch
from repro.uarch.ports import PortSet, parse_ports
from repro.utils.errors import UnknownOpcodeError


@dataclass(frozen=True)
class Uop:
    """One micro-operation: how many copies and which ports may execute it."""

    count: int
    ports: PortSet

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("uop count must be positive")
        if not self.ports:
            raise ValueError("uop must name at least one port")


@dataclass(frozen=True)
class InstructionCost:
    """Latency / reciprocal throughput / port usage of one instruction form."""

    latency: float
    throughput: float
    uops: Tuple[Uop, ...]

    def __post_init__(self) -> None:
        if self.latency < 0 or self.throughput <= 0:
            raise ValueError("latency must be >= 0 and throughput > 0")

    @property
    def total_uops(self) -> int:
        """Total number of micro-operations."""
        return sum(u.count for u in self.uops)


def _cost(latency: float, throughput: float, *port_specs: str) -> InstructionCost:
    uops = tuple(Uop(1, parse_ports(spec)) for spec in port_specs)
    if not uops:
        uops = (Uop(1, parse_ports("0156")),)
    return InstructionCost(latency, throughput, uops)


# ---------------------------------------------------------------------------
# Category-level defaults (register-to-register forms), per micro-architecture
# ---------------------------------------------------------------------------

_HSW_CATEGORY: Dict[str, InstructionCost] = {
    "int_alu": _cost(1, 0.25, "0156"),
    "mov": _cost(1, 0.25, "0156"),
    "cmp": _cost(1, 0.25, "0156"),
    "lea": _cost(1, 0.5, "15"),
    "shift": _cost(1, 0.5, "06"),
    "int_mul": _cost(3, 1.0, "1"),
    "int_div": _cost(36, 25.0, "0"),
    "bit": _cost(3, 1.0, "1"),
    "setcc": _cost(1, 0.5, "06"),
    "cmov": _cost(2, 0.5, "06", "06"),
    "push": _cost(1, 1.0, "237", "4"),
    "pop": _cost(1, 0.5, "23"),
    "nop": _cost(0, 0.25, "0156"),
    "fp_mov": _cost(1, 0.33, "015"),
    "fp_add": _cost(3, 1.0, "1"),
    "fp_mul": _cost(5, 0.5, "01"),
    "fp_fma": _cost(5, 0.5, "01"),
    "fp_div": _cost(13, 7.0, "0"),
    "fp_sqrt": _cost(19, 13.0, "0"),
    "fp_cmp": _cost(3, 1.0, "1"),
    "fp_cvt": _cost(4, 1.0, "1"),
    "vec_logic": _cost(1, 0.33, "015"),
    "vec_int": _cost(1, 0.5, "15"),
    "shuffle": _cost(1, 1.0, "5"),
}

_SKL_CATEGORY: Dict[str, InstructionCost] = {
    "int_alu": _cost(1, 0.25, "0156"),
    "mov": _cost(1, 0.25, "0156"),
    "cmp": _cost(1, 0.25, "0156"),
    "lea": _cost(1, 0.5, "15"),
    "shift": _cost(1, 0.5, "06"),
    "int_mul": _cost(3, 1.0, "1"),
    "int_div": _cost(26, 6.0, "0"),
    "bit": _cost(3, 1.0, "1"),
    "setcc": _cost(1, 0.5, "06"),
    "cmov": _cost(1, 0.5, "06"),
    "push": _cost(1, 1.0, "237", "4"),
    "pop": _cost(1, 0.5, "23"),
    "nop": _cost(0, 0.25, "0156"),
    "fp_mov": _cost(1, 0.25, "015"),
    "fp_add": _cost(4, 0.5, "01"),
    "fp_mul": _cost(4, 0.5, "01"),
    "fp_fma": _cost(4, 0.5, "01"),
    "fp_div": _cost(11, 3.0, "0"),
    "fp_sqrt": _cost(12, 3.0, "0"),
    "fp_cmp": _cost(3, 1.0, "01"),
    "fp_cvt": _cost(4, 1.0, "01"),
    "vec_logic": _cost(1, 0.33, "015"),
    "vec_int": _cost(1, 0.33, "015"),
    "shuffle": _cost(1, 1.0, "5"),
}

# ---------------------------------------------------------------------------
# Per-mnemonic overrides (where the category default is too coarse)
# ---------------------------------------------------------------------------

_HSW_OVERRIDES: Dict[str, InstructionCost] = {
    "imul": _cost(3, 1.0, "1"),
    "mul": _cost(4, 2.0, "1", "6"),
    "div": _cost(36, 25.0, "0", "1", "5"),
    "idiv": _cost(39, 28.0, "0", "1", "5"),
    "divss": _cost(13, 7.0, "0"),
    "divsd": _cost(20, 14.0, "0"),
    "divps": _cost(13, 7.0, "0"),
    "divpd": _cost(20, 14.0, "0"),
    "vdivss": _cost(13, 7.0, "0"),
    "vdivsd": _cost(20, 14.0, "0"),
    "vdivps": _cost(13, 7.0, "0"),
    "vdivpd": _cost(20, 14.0, "0"),
    "sqrtss": _cost(19, 13.0, "0"),
    "sqrtsd": _cost(27, 20.0, "0"),
    "vsqrtss": _cost(19, 13.0, "0"),
    "vsqrtsd": _cost(27, 20.0, "0"),
    "xchg": _cost(2, 1.0, "0156", "0156", "0156"),
    "movzx": _cost(1, 0.25, "0156"),
    "movsx": _cost(1, 0.25, "0156"),
    "movsxd": _cost(1, 0.25, "0156"),
    "popcnt": _cost(3, 1.0, "1"),
    "lzcnt": _cost(3, 1.0, "1"),
    "tzcnt": _cost(3, 1.0, "1"),
    "bswap": _cost(2, 0.5, "15"),
    "pmulld": _cost(10, 2.0, "0"),
}

_SKL_OVERRIDES: Dict[str, InstructionCost] = {
    "imul": _cost(3, 1.0, "1"),
    "mul": _cost(4, 2.0, "1", "6"),
    "div": _cost(26, 6.0, "0", "1", "5"),
    "idiv": _cost(29, 9.0, "0", "1", "5"),
    "divss": _cost(11, 3.0, "0"),
    "divsd": _cost(14, 4.0, "0"),
    "divps": _cost(11, 3.0, "0"),
    "divpd": _cost(14, 4.0, "0"),
    "vdivss": _cost(11, 3.0, "0"),
    "vdivsd": _cost(14, 4.0, "0"),
    "vdivps": _cost(11, 3.0, "0"),
    "vdivpd": _cost(14, 4.0, "0"),
    "sqrtss": _cost(12, 3.0, "0"),
    "sqrtsd": _cost(18, 6.0, "0"),
    "vsqrtss": _cost(12, 3.0, "0"),
    "vsqrtsd": _cost(18, 6.0, "0"),
    "xchg": _cost(2, 1.0, "0156", "0156", "0156"),
    "movzx": _cost(1, 0.25, "0156"),
    "movsx": _cost(1, 0.25, "0156"),
    "movsxd": _cost(1, 0.25, "0156"),
    "popcnt": _cost(3, 1.0, "1"),
    "lzcnt": _cost(3, 1.0, "1"),
    "tzcnt": _cost(3, 1.0, "1"),
    "bswap": _cost(2, 0.5, "15"),
    "pmulld": _cost(10, 1.0, "01"),
}

_TABLES: Dict[str, Tuple[Dict[str, InstructionCost], Dict[str, InstructionCost]]] = {
    "hsw": (_HSW_CATEGORY, _HSW_OVERRIDES),
    "skl": (_SKL_CATEGORY, _SKL_OVERRIDES),
}


def cost_table(microarch) -> Dict[str, InstructionCost]:
    """The full mnemonic → cost table for one micro-architecture.

    Control-transfer opcodes (not allowed in basic blocks) are omitted.
    """
    uarch = get_microarch(microarch)
    categories, overrides = _TABLES[uarch.short_name]
    table: Dict[str, InstructionCost] = {}
    for mnemonic, spec in OPCODES.items():
        if not spec.allowed_in_block:
            continue
        if mnemonic in overrides:
            table[mnemonic] = overrides[mnemonic]
        elif spec.category in categories:
            table[mnemonic] = categories[spec.category]
        else:  # pragma: no cover - defensive: every category has a default
            table[mnemonic] = _cost(1, 0.5, "0156")
    return table


def instruction_cost(mnemonic: str, microarch) -> InstructionCost:
    """Cost of the register-to-register form of ``mnemonic``."""
    uarch = get_microarch(microarch)
    spec = opcode_spec(mnemonic)
    categories, overrides = _TABLES[uarch.short_name]
    if mnemonic in overrides:
        return overrides[mnemonic]
    if spec.category in categories:
        return categories[spec.category]
    if not spec.allowed_in_block:
        raise UnknownOpcodeError(mnemonic)
    return _cost(1, 0.5, "0156")  # pragma: no cover - defensive


def instruction_cost_for(instruction: Instruction, microarch) -> InstructionCost:
    """Cost of a concrete instruction, accounting for its memory operands.

    * A memory *source* adds a load uop (load ports) and the load-to-use
      latency to the instruction's latency.
    * A memory *destination* adds a store-address uop and a store-data uop and
      forces the reciprocal throughput to at least 1 cycle (one store per
      cycle on the modelled cores).
    * ``lea`` address operands add nothing (they are not memory accesses).
    """
    uarch = get_microarch(microarch)
    base = instruction_cost(instruction.mnemonic, uarch)
    loads = instruction.loads_memory and instruction.mnemonic != "pop"
    stores = instruction.stores_memory and instruction.mnemonic != "push"

    latency = base.latency
    throughput = base.throughput
    uops = list(base.uops)

    if loads:
        latency += uarch.load_latency
        throughput = max(throughput, 0.5)
        uops.append(Uop(1, uarch.load_ports))
    if stores:
        throughput = max(throughput, 1.0)
        uops.append(Uop(1, uarch.store_agu_ports))
        uops.append(Uop(1, uarch.store_data_ports))
    return InstructionCost(latency, throughput, tuple(uops))


def block_reciprocal_throughput_bound(instructions, microarch) -> float:
    """Lower bound on a block's steady-state cycles from port pressure alone.

    Used by the LLVM-MCA-style baseline model and by tests as an invariant:
    no simulator result may beat the port-pressure bound.
    """
    uarch = get_microarch(microarch)
    pressure: Dict[str, float] = {p: 0.0 for p in uarch.ports}
    total_uops = 0
    for instruction in instructions:
        cost = instruction_cost_for(instruction, uarch)
        total_uops += cost.total_uops
        for uop_index, uop in enumerate(cost.uops):
            # Non-pipelined units (division): the primary uop occupies its
            # port for the instruction's full reciprocal throughput.
            occupancy = float(uop.count)
            if uop_index == 0 and cost.throughput > 1.0:
                occupancy = max(occupancy, float(cost.throughput))
            share = occupancy / len(uop.ports)
            for port in uop.ports:
                pressure[port] += share
    port_bound = max(pressure.values()) if pressure else 0.0
    frontend_bound = total_uops / uarch.issue_width
    return max(port_bound, frontend_bound)
