"""Execution-port model.

Modern Intel cores dispatch micro-operations to a small set of execution
ports; which ports an instruction's uops can use determines how many copies
can execute per cycle.  Ports are identified by single-character names
("0"–"9"), matching the notation used by uops.info ("p015" = ports 0, 1, 5).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

#: A single execution port identifier.
Port = str

#: A set of ports a uop may be dispatched to.
PortSet = FrozenSet[Port]


def parse_ports(spec: str) -> PortSet:
    """Parse a port-usage string like ``"015"`` or ``"p015"`` into a set."""
    spec = spec.lower().lstrip("p")
    if not spec:
        raise ValueError("empty port specification")
    ports = frozenset(spec)
    for port in ports:
        if not port.isdigit():
            raise ValueError(f"invalid port name {port!r} in {spec!r}")
    return ports


def format_ports(ports: Iterable[Port]) -> str:
    """Format a port set in uops.info style (``p015``)."""
    return "p" + "".join(sorted(ports))
