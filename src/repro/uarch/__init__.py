"""Micro-architecture substrate: execution ports, per-opcode cost tables.

This plays the role that uops.info instruction tables and the hand-tuned
uiCA pipeline parameters play in the paper: it provides, per modelled
micro-architecture (Haswell, Skylake), the latency, reciprocal throughput and
port usage of every opcode in the ISA subset, plus the machine parameters the
pipeline simulator needs (issue width, buffer sizes, load latency, ...).
"""

from repro.uarch.ports import Port, PortSet, parse_ports
from repro.uarch.microarch import (
    MicroArchitecture,
    HASWELL,
    SKYLAKE,
    get_microarch,
    available_microarchitectures,
)
from repro.uarch.tables import (
    InstructionCost,
    Uop,
    instruction_cost,
    instruction_cost_for,
    cost_table,
)

__all__ = [
    "Port",
    "PortSet",
    "parse_ports",
    "MicroArchitecture",
    "HASWELL",
    "SKYLAKE",
    "get_microarch",
    "available_microarchitectures",
    "InstructionCost",
    "Uop",
    "instruction_cost",
    "instruction_cost_for",
    "cost_table",
]
