"""TCP front-end for the explanation service.

The JSON-lines protocol (:mod:`repro.service.protocol`) is transport
agnostic: one request object per line in, one result object per line out, in
submission order, failures in-band.  :class:`SocketServer` binds that
protocol to a TCP port so any process on the network — not just the child of
a pipe — can drive one warm :class:`~repro.service.core.ExplanationService`:

```
client sockets ──▶ per-connection reader threads ──submit──▶ service queue
      ▲                                                          │
      └── per-connection writer threads ◀── result(ticket) ◀─────┘
```

* **One reader, one writer per connection.**  The reader decodes lines and
  submits them (the service's bounded queue throttles a connection that
  outpaces the dispatcher); the writer collects each ticket's result *in the
  connection's submission order* and streams it back, so per-connection
  ordering matches the stdio protocol exactly while connections interleave
  freely through the shared dispatcher.
* **Connection-scoped error isolation.**  Undecodable bytes, oversized
  lines, submission failures and mid-request disconnects are handled inside
  the offending connection — in-band ``failed`` responses while the socket
  lives, silent ticket cleanup once it is gone.  Nothing a client sends (or
  stops sending) can take down the server or another connection.
* **Bounded admission.**  ``max_connections`` caps concurrent clients; a
  connection over the cap is answered with one in-band error line and
  closed.  ``max_line_bytes`` caps a single request line; overlong lines
  are discarded (never buffered whole) and answered in-band.
* **Graceful drain.**  :meth:`close` stops accepting, lets every submitted
  request finish and flush, then closes the sockets; ``drain=False`` drops
  connections immediately but still consumes their tickets so the service
  leaks no per-request state.  The CLI wires SIGTERM/SIGINT to this.

The server *borrows* the service (like :func:`~repro.service.protocol.serve_stream`);
the caller that built the service closes it, after closing the server.
"""

from __future__ import annotations

import json
import queue
import selectors
import socket
import threading
import time
from typing import Dict, Optional, Set, Tuple

from repro.service.core import ExplanationService
from repro.service.protocol import (
    ServiceOp,
    cancel_to_dict,
    request_from_line,
    result_to_dict,
    stats_to_dict,
)
from repro.utils.errors import ReproError, ServiceError

#: Reader sentinels (distinct from any line payload).
_EOF = object()
_TIMEOUT = object()
_OVERSIZED = object()

#: Writer queue items are ("result", client_id, request_id) or
#: ("error", client_id, message); this sentinel ends the writer.
_WRITER_DONE = object()


class _LineReader:
    """Buffered line reading over a raw socket with a hard line-length cap.

    ``socket.makefile`` is documented to require a blocking socket, and it
    buffers without bound; this reader supports idle timeouts (surfaced as
    :data:`_TIMEOUT`) and discards — rather than accumulates — lines longer
    than ``max_line_bytes`` (surfaced as :data:`_OVERSIZED` once the line
    finally ends).  EOF with a half-written line pending simply reports EOF:
    the line never completed, so there is no request to answer.

    The idle timeout is enforced with a read-side selector only — never via
    ``settimeout``, which would also bound the *writer's* ``sendall`` on the
    shared socket and could corrupt a response stream to a slow-reading
    client with a mid-send timeout.  ``selectors.DefaultSelector`` (epoll on
    Linux) is used instead of ``select.select`` so file descriptors beyond
    ``FD_SETSIZE`` work in high-fd processes.
    """

    def __init__(
        self,
        sock: socket.socket,
        max_line_bytes: int,
        idle_timeout: Optional[float] = None,
    ) -> None:
        self._sock = sock
        self._max_line_bytes = max_line_bytes
        self._idle_timeout = idle_timeout
        self._selector: Optional[selectors.BaseSelector] = None
        if idle_timeout is not None:
            self._selector = selectors.DefaultSelector()
            self._selector.register(sock, selectors.EVENT_READ)
        self._buffer = bytearray()
        self._discarding = False
        self._eof = False

    def readline(self):
        """The next complete line (bytes), or a sentinel."""
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                if self._discarding:
                    # The tail of an overlong line; report it once, now that
                    # we know where it ended.
                    self._discarding = False
                    return _OVERSIZED
                if len(line) > self._max_line_bytes:
                    # The whole overlong line arrived in one recv, so it was
                    # never streamed through the discard path above.
                    return _OVERSIZED
                return line
            if self._discarding:
                # Drop the buffered middle of an overlong line.
                self._buffer.clear()
            elif len(self._buffer) > self._max_line_bytes:
                self._discarding = True
                self._buffer.clear()
            if self._eof:
                return _EOF
            try:
                if self._selector is not None:
                    if not self._selector.select(self._idle_timeout):
                        return _TIMEOUT
                chunk = self._sock.recv(65536)
            except (OSError, ValueError):
                # ValueError: selector on a socket already closed under us.
                chunk = b""
            if not chunk:
                self._eof = True
                if self._buffer and not self._discarding:
                    # Half-written final line: it never completed, so there
                    # is nothing to answer — but do not loop forever on it.
                    self._buffer.clear()
                return _EOF
            self._buffer.extend(chunk)

    def close(self) -> None:
        """Release the selector's file descriptor (the socket stays open)."""
        if self._selector is not None:
            self._selector.close()
            self._selector = None


class _Connection:
    """One client connection: reader + writer thread pair over one socket."""

    def __init__(self, server: "SocketServer", sock: socket.socket, peer) -> None:
        self.server = server
        self.sock = sock
        self.peer = peer
        self.closed = threading.Event()
        self._writer_queue: "queue.Queue" = queue.Queue()
        #: Requests submitted but not yet answered on this connection; the
        #: idle timeout must not fire while a response is still owed.
        self._inflight = 0
        #: The subset answered connection-locally (errors and ops): these
        #: bypass the service's bounded queue, so they get their own cap.
        self._local_pending = 0
        #: Outstanding client id → service request id on this connection —
        #: the targets a ``cancel`` op can name.  Written by the reader at
        #: submit time, pruned by the writer as responses flush.
        self._requests: Dict[str, str] = {}
        self._inflight_lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._send_failed = False
        name = f"repro-socket-{peer[0]}:{peer[1]}"
        self._reader = threading.Thread(
            target=self._read_loop, name=f"{name}-reader", daemon=True
        )
        self._writer = threading.Thread(
            target=self._write_loop, name=f"{name}-writer", daemon=True
        )

    def start(self) -> None:
        self._reader.start()
        self._writer.start()

    # ------------------------------------------------------------- plumbing

    def _track(self, delta: int) -> int:
        with self._inflight_lock:
            self._inflight += delta
            return self._inflight

    def _track_local(self, delta: int) -> int:
        with self._inflight_lock:
            self._inflight += delta
            self._local_pending += delta
            return self._local_pending

    def _send_line(self, payload: str) -> None:
        """Best-effort send; after the first failure the connection only
        drains (tickets must still be consumed to free service state)."""
        if self._send_failed:
            return
        try:
            with self._send_lock:
                self.sock.sendall(payload.encode("utf-8") + b"\n")
        except OSError:
            self._send_failed = True

    def _enqueue_error(self, client_id: Optional[str], message: str) -> None:
        self._track_local(1)
        self._writer_queue.put(("error", client_id, message))

    # ----------------------------------------------------------------- reader

    def _read_loop(self) -> None:
        reader = None
        try:
            reader = _LineReader(
                self.sock, self.server.max_line_bytes, self.server.idle_timeout
            )
            while not self.server.closing:
                if self._track_local(0) >= self.server.max_pending_responses:
                    # The writer owes this client more *connection-local*
                    # responses (errors/ops) than any sane pipelining
                    # window.  Explanation requests are backpressured by
                    # the service queue and do not count here — a
                    # legitimately deep explanation pipeline must not be
                    # disconnected — but a client flooding ops/errors is
                    # abusing the protocol: hang up rather than buffer
                    # without limit.
                    break
                item = reader.readline()
                if item is _EOF:
                    break
                if item is _TIMEOUT:
                    if self._track(0) == 0:
                        # Idle past the deadline with nothing owed: hang up.
                        break
                    continue
                if item is _OVERSIZED:
                    self._enqueue_error(
                        None,
                        f"request line exceeds {self.server.max_line_bytes} "
                        f"bytes and was discarded",
                    )
                    continue
                try:
                    line = item.decode("utf-8")
                except UnicodeDecodeError as error:
                    self._enqueue_error(None, f"request line is not UTF-8: {error}")
                    continue
                if not line.strip():
                    continue
                try:
                    client_id, request = request_from_line(line)
                except ReproError as error:
                    self._enqueue_error(getattr(error, "client_id", None), str(error))
                    continue
                if isinstance(request, ServiceOp):
                    # Answered by the writer in this connection's submission
                    # order; the stats snapshot is taken when its turn comes.
                    # A cancel *acts* right here at read time — the target
                    # may be queued or running now — and only its
                    # acknowledgement waits for its turn.
                    self._track_local(1)
                    if request.op == "cancel":
                        assert request.target is not None
                        payload = cancel_to_dict(
                            self.server.service,
                            self._requests,
                            client_id,
                            request.target,
                        )
                        self._writer_queue.put(("done", client_id, payload))
                    else:
                        self._writer_queue.put(("stats", client_id, None))
                    continue
                try:
                    request_id = self.server.service.submit(request)
                except ReproError as error:
                    self._enqueue_error(client_id, str(error))
                    continue
                if client_id is not None:
                    self._requests[client_id] = request_id
                self._track(1)
                self._writer_queue.put(("result", client_id, request_id))
        except Exception:  # noqa: BLE001 - isolation: never kill the server
            pass
        finally:
            if reader is not None:
                reader.close()
            self._writer_queue.put(_WRITER_DONE)

    # ----------------------------------------------------------------- writer

    def _write_loop(self) -> None:
        try:
            while True:
                item = self._writer_queue.get()
                if item is _WRITER_DONE:
                    break
                kind, client_id, payload = item
                if kind == "error":
                    line = json.dumps(
                        {"id": client_id, "status": "failed", "error": payload}
                    )
                elif kind == "stats":
                    line = json.dumps(
                        stats_to_dict(self.server.service.stats(), client_id)
                    )
                elif kind == "done":
                    # Pre-built at read time (cancel acknowledgements).
                    line = json.dumps(payload)
                else:
                    # Blocks until the dispatcher resolves this connection's
                    # oldest outstanding ticket — which is exactly what keeps
                    # responses in per-connection submission order.
                    result = self.server.service.result(payload)
                    line = json.dumps(result_to_dict(result, client_id))
                    if (
                        client_id is not None
                        and self._requests.get(client_id) == payload
                    ):
                        del self._requests[client_id]
                self._send_line(line)
                if kind == "result":
                    self._track(-1)
                else:
                    self._track_local(-1)
        except Exception:  # noqa: BLE001 - isolation: never kill the server
            pass
        finally:
            self._shutdown_socket()
            self.closed.set()
            self.server._forget(self)

    def _shutdown_socket(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    # ------------------------------------------------------------- lifecycle

    def interrupt(self) -> None:
        """Unblock the reader (used by server close): half-close the read
        side so a blocked ``recv`` returns EOF and the writer drains."""
        try:
            self.sock.shutdown(socket.SHUT_RD)
        except OSError:
            pass

    def abort(self) -> None:
        """Tear the socket down now; the writer still consumes its tickets."""
        self._send_failed = True
        self._shutdown_socket()

    def join(self, timeout: Optional[float]) -> None:
        self._reader.join(timeout)
        self._writer.join(timeout)


class SocketServer:
    """Serve the JSON-lines explanation protocol over TCP.

    Parameters
    ----------
    service:
        The (started or startable) :class:`ExplanationService` every
        connection shares.  Borrowed, never closed — close the server first,
        then the service.
    host / port:
        Bind address.  ``port=0`` picks an ephemeral port; read it back from
        :attr:`address` (tests and the benchmark do).
    max_connections:
        Concurrent-client cap; connections over it get one in-band error
        line and are closed.
    idle_timeout:
        Seconds a connection may sit with no traffic *and* no response owed
        before the server hangs up (``None`` = never).
    max_line_bytes:
        Hard cap on one request line; longer lines are discarded as they
        stream in and answered with an in-band error.
    max_pending_responses:
        Hard cap on *connection-local* responses owed to one connection.
        Explanation requests are backpressured by the service's bounded
        queue and are exempt (a deep but legitimate explanation pipeline
        is never disconnected), but error and ``stats`` responses are
        answered connection-locally — a client pipelining those past any
        reasonable window is abusing the protocol and is hung up on, so
        per-connection memory stays bounded.

    Use as a context manager, or pair :meth:`start` with :meth:`close`::

        with ExplanationService(model="crude") as service:
            with SocketServer(service, port=0) as server:
                host, port = server.address
                ...  # point ServiceClient(host, port) at it
    """

    def __init__(
        self,
        service: ExplanationService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = 8,
        idle_timeout: Optional[float] = None,
        max_line_bytes: int = 1 << 20,
        max_pending_responses: int = 1024,
    ) -> None:
        if max_connections < 1:
            raise ServiceError("max_connections must be >= 1")
        if max_line_bytes < 2:
            raise ServiceError("max_line_bytes must be >= 2")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ServiceError("idle_timeout must be positive (or None)")
        if max_pending_responses < 1:
            raise ServiceError("max_pending_responses must be >= 1")
        self.service = service
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.idle_timeout = idle_timeout
        self.max_line_bytes = max_line_bytes
        self.max_pending_responses = max_pending_responses
        self.closing = False
        self._listener: Optional[socket.socket] = None
        self._acceptor: Optional[threading.Thread] = None
        self._connections: Set[_Connection] = set()
        self._conn_lock = threading.Lock()
        self._closed_event = threading.Event()
        self._started = False

    # ------------------------------------------------------------- lifecycle

    def start(self) -> Tuple[str, int]:
        """Bind, listen and start accepting; returns the bound address."""
        if self._started:
            raise ServiceError("this socket server has already been started")
        self._started = True
        self.service.start()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            listener.listen(self.max_connections * 2)
        except OSError:
            listener.close()
            raise
        self._listener = listener
        self.host, self.port = listener.getsockname()[:2]
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="repro-socket-acceptor", daemon=True
        )
        self._acceptor.start()
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (meaningful after :meth:`start`)."""
        return (self.host, self.port)

    @property
    def connections(self) -> int:
        """How many client connections are currently live."""
        with self._conn_lock:
            return len(self._connections)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server is closed (the CLI parks here).

        Returns ``False`` if ``timeout`` (seconds) elapsed first.
        """
        return self._closed_event.wait(timeout)

    def close(self, *, drain: bool = True, timeout: Optional[float] = 30.0) -> None:
        """Stop accepting and shut every connection down.  Idempotent.

        With ``drain`` (the default) each connection's submitted requests
        finish and their responses flush before its socket closes; with
        ``drain=False`` sockets drop immediately (pending tickets are still
        consumed internally, so the service retains no per-request state).
        ``timeout`` bounds the per-phase waits so a wedged client cannot
        hold shutdown hostage.
        """
        if self.closing:
            self._closed_event.wait(timeout)
            return
        self.closing = True
        if self._listener is not None:
            # Closing an fd does not wake a thread blocked in accept() (on
            # Linux the syscall just keeps waiting); shutdown() does.  Where
            # shutdown on a listener is rejected (ENOTCONN on some
            # platforms), fall back to a self-connection, which the accept
            # loop answers with a shutting-down refusal.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                try:
                    socket.create_connection(self.address, timeout=0.5).close()
                except OSError:
                    pass
            try:
                self._listener.close()
            except OSError:
                pass
        if self._acceptor is not None:
            self._acceptor.join(timeout)
        with self._conn_lock:
            connections = list(self._connections)
        for connection in connections:
            if drain:
                connection.interrupt()
            else:
                connection.abort()
        for connection in connections:
            connection.join(timeout)
        self._closed_event.set()

    def __enter__(self) -> "SocketServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- acceptor

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self.closing:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                if self.closing:
                    return  # listener closed (server shutting down)
                # Transient accept failure (ECONNABORTED, fd pressure from
                # an abusive reconnect flood): back off briefly and keep
                # accepting — one bad moment must not turn into a server
                # that looks alive but refuses every future client.
                time.sleep(0.05)
                continue
            if self.closing:
                self._refuse(sock, "server is shutting down")
                continue
            with self._conn_lock:
                at_capacity = len(self._connections) >= self.max_connections
            if at_capacity:
                self._refuse(
                    sock,
                    f"server at capacity ({self.max_connections} connections); "
                    f"retry later",
                )
                continue
            connection = _Connection(self, sock, peer)
            with self._conn_lock:
                self._connections.add(connection)
            connection.start()

    @staticmethod
    def _refuse(sock: socket.socket, message: str) -> None:
        """One in-band error line, then hang up (best effort)."""
        try:
            line = json.dumps({"id": None, "status": "failed", "error": message})
            sock.sendall(line.encode("utf-8") + b"\n")
        except OSError:
            pass
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _forget(self, connection: _Connection) -> None:
        with self._conn_lock:
            self._connections.discard(connection)
