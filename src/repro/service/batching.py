"""Cross-request continuous batching for the explanation service.

The scheduler serializes requests per session key — ``(model, uarch)`` —
so a warm session used to answer exactly one request per cost-model
invocation while same-key requests queued behind it.  This module is the
iteration-level (Orca/vLLM-style) alternative: requests are admitted and
retired at *KL-LUCB round* granularity, not request granularity.

One fused tick group runs per key, on the one dispatcher thread that holds
the key.  Each member request is a :class:`_RequestRun` — the
round-resumable form of its anchor search, built on
:meth:`~repro.explain.anchors.AnchorSearch.search_rounds`.  Every tick the
group concatenates the members' pending perturbed-block batches, issues
**one** :meth:`~repro.models.base.CachedCostModel.predict_batch_segmented`
through the shared warm model (cross-request intra-tick dedupe comes free),
scatters predictions and exact per-segment query accounting back, and lets
finished requests retire while newly queued same-key work is absorbed
mid-stream (see :meth:`~repro.service.scheduler.Scheduler.claim_extra`).

Determinism contract: each request keeps its own seeded RNG stream and its
own request-scoped population records, exactly as the unfused execution
path does, so the fused service's results are bit-for-bit identical to the
``dispatchers=1``, fusion-off oracle regardless of which requests happened
to share a tick.  Fusion changes only which model invocation served a
round — arrival order can shift cache hits between requests (``num_queries``
is substrate-dependent by design), never the explanation payload.

Cancellation: every request's :class:`~repro.utils.cancellation.CancelToken`
is checked at its own round boundaries (inside ``search_rounds``) and before
each block's search starts, so a cancelled or deadline-expired request
raises out of *its* generator between fused ticks and is retired without
perturbing the other members of the group.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bb.block import BasicBlock
from repro.cache.fingerprint import cacheable_seed
from repro.explain.anchors import AnchorSearch
from repro.explain.config import ExplainerConfig
from repro.explain.coverage import PopulationRecord
from repro.explain.explanation import Explanation
from repro.models.base import CostModel, QueryCounter, QueryTally
from repro.runtime.session import ExplanationSession
from repro.utils.cancellation import CancelToken
from repro.utils.rng import as_rng, spawn_rngs, spawn_seeds


@dataclass(frozen=True)
class FusionStats:
    """Continuous-batching counters (snapshot via ``ExplanationService.stats``).

    ``mean_occupancy`` is requests per fused tick; values above 1.0 mean
    cross-request fusion actually happened.  ``shared_hits`` counts cache
    lookups one request got for free because another request in the same
    tick (or an earlier fused segment) already paid for the block.
    """

    enabled: bool = False
    max_fused_requests: int = 0
    ticks: int = 0
    rounds_fused: int = 0
    requests_fused: int = 0
    shared_hits: int = 0
    #: Requests-per-tick histogram as ``(occupancy, ticks)`` pairs, ascending.
    occupancy: Tuple[Tuple[int, int], ...] = ()

    @property
    def mean_occupancy(self) -> float:
        return self.rounds_fused / self.ticks if self.ticks else 0.0

    def describe(self) -> str:
        if not self.enabled:
            return "continuous batching off"
        return (
            f"{self.ticks} fused ticks, {self.rounds_fused} rounds fused "
            f"({self.mean_occupancy:.2f} mean occupancy, "
            f"{self.requests_fused} requests, {self.shared_hits} shared hits)"
        )


class FusionCounters:
    """Thread-safe accumulator behind :class:`FusionStats`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ticks = 0
        self._rounds = 0
        self._requests = 0
        self._shared_hits = 0
        self._occupancy: Dict[int, int] = {}

    def record_request(self) -> None:
        with self._lock:
            self._requests += 1

    def record_tick(self, occupancy: int, shared_hits: int) -> None:
        with self._lock:
            self._ticks += 1
            self._rounds += occupancy
            self._shared_hits += shared_hits
            self._occupancy[occupancy] = self._occupancy.get(occupancy, 0) + 1

    def snapshot(self, *, enabled: bool, max_fused_requests: int) -> FusionStats:
        with self._lock:
            return FusionStats(
                enabled=enabled,
                max_fused_requests=max_fused_requests,
                ticks=self._ticks,
                rounds_fused=self._rounds,
                requests_fused=self._requests,
                shared_hits=self._shared_hits,
                occupancy=tuple(sorted(self._occupancy.items())),
            )


@dataclass
class FusedEntry:
    """One request handed to a fused tick group by the service.

    The service keeps all ticket semantics to itself: ``finish`` receives
    the completed explanations in block order, ``fail`` the exception that
    retired the request (cancellation, deadline expiry or a model error).
    Exactly one of the two is called, once, on the group's thread.
    """

    blocks: Tuple[BasicBlock, ...]
    seed: int
    token: Optional[CancelToken]
    finish: Callable[[List[Explanation]], None]
    fail: Callable[[BaseException], None]


class _RequestRun:
    """Round-resumable execution state of one fused request.

    Mirrors the unfused path exactly: a single-block request drives its
    search from ``as_rng(seed)`` (as ``session.explain`` would), a fleet
    request spawns one stream per block (as ``explain_many`` would), and
    population records are request-scoped — same key, same fill order as
    the serial loop after the service's per-request record reset.

    With a session result cache installed, cache-eligible positions —
    single blocks, and fleet positions whose block key is unique within the
    request (duplicates share a record and stay uncached, exactly like
    ``explain_many``) — are looked up before their search is built: a hit
    appends the stored explanation and retires the position **without
    consuming a KL-LUCB round**, and a computed position is stored when it
    completes.  A hit's ``num_queries`` is the storing computation's count
    (the hit itself queried the model zero times).
    """

    __slots__ = (
        "entry",
        "model",
        "config",
        "session",
        "blocks",
        "streams",
        "seeds",
        "cacheable",
        "records",
        "position",
        "explanations",
        "search",
        "rounds",
        "pending",
        "queries",
    )

    def __init__(
        self,
        entry: FusedEntry,
        model: CostModel,
        config: ExplainerConfig,
        session: Optional[ExplanationSession] = None,
    ) -> None:
        self.entry = entry
        self.model = model
        self.config = config
        self.session = session
        self.blocks: List[BasicBlock] = list(entry.blocks)
        self.seeds: List[Optional[int]] = [None] * len(self.blocks)
        self.cacheable = [False] * len(self.blocks)
        memoized = (
            session is not None
            and session.result_cache is not None
            and cacheable_seed(entry.seed)
        )
        if len(self.blocks) == 1:
            self.streams = [as_rng(entry.seed)]
            if memoized:
                self.seeds = [int(entry.seed)]
                self.cacheable = [True]
        elif memoized:
            # Per-position identity: each fleet position's stream is fully
            # determined by its spawned child seed (spawn_rngs builds
            # default_rng(child) from exactly these), so positions memoize
            # under (block, child seed).
            seeds = spawn_seeds(entry.seed, len(self.blocks))
            self.streams = [np.random.default_rng(s) for s in seeds]
            self.seeds = list(seeds)
            key_counts: Dict[Tuple, int] = {}
            for block in self.blocks:
                key_counts[block.key()] = key_counts.get(block.key(), 0) + 1
            self.cacheable = [key_counts[b.key()] == 1 for b in self.blocks]
        else:
            self.streams = spawn_rngs(entry.seed, len(self.blocks))
        self.records: Dict[Tuple, PopulationRecord] = {}
        self.position = 0
        self.explanations: List[Explanation] = []
        self.search: Optional[AnchorSearch] = None
        self.rounds = None
        #: The perturbed-block batch this request wants answered next tick.
        self.pending: Optional[List[BasicBlock]] = None
        #: Inner-model evaluations charged to the current block so far.
        self.queries = 0

    def _record_for(self, block: BasicBlock) -> Optional[PopulationRecord]:
        if not self.config.shared_background:
            return None
        key = (block.key(), self.config.coverage_samples)
        record = self.records.get(key)
        if record is None:
            record = self.records[key] = PopulationRecord()
        return record

    def charge(self, tally: QueryTally) -> None:
        """Attribute one fused segment's query accounting to this request."""
        self.queries += tally.queries

    def advance(self, predictions: Optional[np.ndarray]) -> bool:
        """Advance until the next fused tick is needed, or the request is done.

        Returns ``True`` with :attr:`pending` set to the block batch the next
        tick must answer, or ``False`` once every block is explained.  Raises
        whatever the search raises — cancellation, deadline expiry, model
        errors — leaving the caller to retire the request.  Queries issued
        inline (search construction, and whole searches in sequential mode)
        are measured on this thread and charged to the current block.
        """
        while True:
            if self.rounds is None:
                if self.entry.token is not None:
                    self.entry.token.check()
                block = self.blocks[self.position]
                if self.cacheable[self.position] and self.session is not None:
                    cached = self.session.result_cache_lookup(
                        block, self.seeds[self.position]
                    )
                    if cached is not None:
                        # Retired without a search: this position consumes
                        # no KL-LUCB round and issues no tick work.
                        self.explanations.append(cached)
                        self.position += 1
                        self.queries = 0
                        predictions = None
                        if self.position >= len(self.blocks):
                            return False
                        continue
                with QueryCounter(self.model) as counter:
                    self.search = AnchorSearch(
                        self.model,
                        block,
                        self.config,
                        self.streams[self.position],
                        coverage_record=self._record_for(block),
                        cancel=self.entry.token,
                    )
                self.queries += counter.queries
                self.rounds = self.search.search_rounds()
                predictions = None
            anchor = None
            finished = False
            with QueryCounter(self.model) as counter:
                try:
                    pending = self.rounds.send(predictions)
                except StopIteration as stop:
                    anchor = stop.value
                    finished = True
            self.queries += counter.queries
            if not finished:
                self.pending = pending
                return True
            assert self.search is not None
            explanation = Explanation.from_search(
                self.search, anchor, num_queries=self.queries
            )
            self.explanations.append(explanation)
            if self.cacheable[self.position] and self.session is not None:
                # Safe to memoize: a cacheable position ran on its own seeded
                # stream with a request-scoped record no other position
                # shares, so the result is a pure function of its fingerprint.
                self.session.result_cache_store(
                    self.blocks[self.position], self.seeds[self.position], explanation
                )
            self.position += 1
            self.queries = 0
            self.rounds = None
            self.search = None
            predictions = None
            if self.position >= len(self.blocks):
                return False

    def close(self) -> None:
        """Drop the suspended search generator (retired mid-stream)."""
        if self.rounds is not None:
            self.rounds.close()
            self.rounds = None


def run_fused_group(
    session: ExplanationSession,
    entries: Sequence[FusedEntry],
    *,
    absorb: Optional[Callable[[int], List[FusedEntry]]] = None,
    max_fused_requests: int = 8,
    counters: Optional[FusionCounters] = None,
) -> None:
    """Run one per-key fused tick group to completion.

    ``entries`` seed the group (admission order is preserved in segment
    order); ``absorb`` is polled between ticks for newly queued same-key
    work, up to ``max_fused_requests`` concurrently resident requests.
    Every entry is retired through its own ``finish``/``fail`` callback; a
    request that raises — cancellation, deadline expiry, a model error —
    leaves the remaining members of the group untouched.
    """
    model = session.model
    config = session.config
    pending_runs: List[_RequestRun] = []

    def step(run: _RequestRun, predictions: Optional[np.ndarray]) -> None:
        """Advance one request; park it for the next tick or retire it."""
        try:
            if run.advance(predictions):
                pending_runs.append(run)
            else:
                session.explanations_produced += len(run.explanations)
                run.entry.finish(run.explanations)
        except Exception as error:  # noqa: BLE001 - reported per request
            run.close()
            run.entry.fail(error)

    def admit(entry: FusedEntry) -> None:
        if counters is not None:
            counters.record_request()
        step(_RequestRun(entry, model, config, session=session), None)

    for entry in entries:
        admit(entry)
    while True:
        if absorb is not None and len(pending_runs) < max_fused_requests:
            for entry in absorb(max_fused_requests - len(pending_runs)):
                admit(entry)
        if not pending_runs:
            break
        batch, pending_runs = list(pending_runs), []
        segments = [run.pending for run in batch]
        try:
            values, tallies, shared_hits = model.predict_batch_segmented(segments)
        except Exception:  # noqa: BLE001 - isolate the poisoned segment
            # One request's blocks made the fused call fail; re-serve each
            # segment on its own so only the failing request retires with
            # the error.
            for run in batch:
                try:
                    with QueryCounter(model) as counter:
                        answers = model.predict_batch(run.pending)
                except Exception as error:  # noqa: BLE001
                    run.close()
                    run.entry.fail(error)
                    continue
                run.queries += counter.queries
                run.pending = None
                step(run, np.asarray(answers))
            continue
        if counters is not None:
            counters.record_tick(len(batch), shared_hits)
        for run, answers, tally in zip(batch, values, tallies):
            run.charge(tally)
            run.pending = None
            step(run, np.asarray(answers))
