"""The multi-dispatcher scheduler behind the explanation service.

One dispatcher thread was the service's original concurrency story: strict
submission order on one thread made determinism trivial and throughput
single-core.  This module scales the *serving* path without giving up the
determinism contract, by making the session key — ``(model, microarch)`` —
the unit of both routing and mutual exclusion:

* **Partitioned affinity routing.**  Every key has a *home* dispatcher,
  chosen by a stable hash (CRC-32 of the key, reproducible across runs and
  processes).  New work for a key is queued under the key and the key is
  made ready on its home dispatcher's list, so one hot key always executes
  on one thread while distinct keys spread across dispatchers.
* **Per-key mutual exclusion.**  A key is *ready* (claimable) only while no
  request of that key is in flight; claiming a key takes exactly one queued
  request and marks the key in flight until that request finishes.  Two
  requests of one key therefore never run concurrently — which is what
  keeps warm-session results bit-for-bit equal to serial submission: each
  request runs alone on its session, resets the session's population
  records, and drives the search from its own seed, so neither thread
  placement nor arrival order can leak into a result.
* **Work stealing.**  A dispatcher with no ready keys of its own claims a
  ready key from another dispatcher before sleeping.  Ready keys have no
  in-flight request *by construction*, so stealing preserves the mutual
  exclusion above; when a stolen key has more work, it is re-listed on its
  home dispatcher, so stealing moves single requests, not residency.
* **Absorption.**  Per-key mutual exclusion used to mean same-key work
  always *parked* behind the in-flight request — stealing is restricted to
  keys with no in-flight request, so no other dispatcher could touch it
  either.  A fused executor (the service's continuous batcher) instead
  calls :meth:`claim_extra` between ticks to absorb newly queued or stolen
  same-key work into its own running group: the work joins the next fused
  tick on the thread already holding the key instead of waiting for the
  whole flight to end.  Each absorbed item is accounted like a claimed one
  (admission slot released on absorb, ``extra_done`` per item on finish),
  and execution stays single-threaded per key.
* **Per-key fairness.**  A claim takes one request, then the key goes to
  the back of its home dispatcher's ready list.  Keys round-robin: a hot
  model with a deep backlog cannot starve other models routed to the same
  dispatcher.
* **Admission control.**  One global bound caps queued-but-unclaimed work
  across all dispatchers.  Blocking submits wait for space (backpressure),
  non-blocking ones raise :class:`~repro.utils.errors.QueueFullError`.

The scheduler is generic over its work items: the service hands it opaque
tickets plus an ``execute`` callable and keeps all request semantics
(status, results, failure capture) to itself.  ``dispatchers=1`` degrades
to a single worker thread over the same code path — the behavioral oracle
the multi-dispatcher configurations are pinned against in tests.
"""

from __future__ import annotations

import threading
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Hashable, List, Optional, Tuple

from repro.utils.errors import QueueFullError, ServiceClosedError


def stable_key_hash(key: Hashable) -> int:
    """A stable, seedless 32-bit hash of ``key`` (CRC-32 of its ``repr``).

    Both the scheduler's dispatcher affinity and the consistent-hash ring of
    :mod:`repro.service.router` place keys with this one function: it is
    reproducible across runs, processes and hosts (``hash()`` is randomized
    per process), so any placement derived from it — a home dispatcher, a
    ring node — is too.
    """
    return zlib.crc32(repr(key).encode("utf-8"))

#: Runs one claimed work item; must not raise (the service catches and
#: converts failures into failed results itself).
Executor = Callable[[Any], None]


@dataclass(frozen=True)
class DispatcherStats:
    """One dispatcher thread's counters."""

    index: int
    executed: int
    stolen: int
    busy: bool

    def describe(self) -> str:
        state = "busy" if self.busy else "idle"
        return f"dispatcher {self.index}: {self.executed} executed ({self.stolen} stolen), {state}"


@dataclass(frozen=True)
class SchedulerStats:
    """Queue/flight snapshot across the dispatcher fleet."""

    dispatchers: int
    queue_depth: int
    in_flight: int
    keys: int
    dispatcher_stats: Tuple[DispatcherStats, ...]
    #: Items pulled into an already-running same-key group via
    #: :meth:`Scheduler.claim_extra` (continuous batching) instead of
    #: waiting for their own claim.
    absorbed: int = 0


class _KeyState:
    """One session key's backlog and flight state."""

    __slots__ = ("queue", "inflight", "ready", "home")

    def __init__(self, home: int) -> None:
        self.queue: Deque[Any] = deque()
        self.inflight = False   # a request of this key is executing
        self.ready = False      # the key sits on exactly one ready list
        self.home = home


class Scheduler:
    """N dispatcher threads over key-partitioned work queues.

    Parameters
    ----------
    execute:
        Called (on a dispatcher thread) with each claimed item.  Items of
        one key are executed one at a time, FIFO; distinct keys execute
        concurrently.
    dispatchers:
        Worker thread count.  ``1`` reproduces the single-dispatcher
        service exactly (modulo cross-key fairness, which cannot change
        results).
    max_queue:
        Global bound on queued-but-unclaimed items (admission control).
    steal:
        Allow idle dispatchers to claim ready keys homed elsewhere.
    """

    def __init__(
        self,
        execute: Executor,
        *,
        dispatchers: int = 1,
        max_queue: int = 64,
        steal: bool = True,
    ) -> None:
        if dispatchers < 1:
            raise ValueError("dispatchers must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self._execute = execute
        self.dispatchers = dispatchers
        self.max_queue = max_queue
        self.steal = steal
        self._lock = threading.Lock()
        #: Dispatchers sleep here; submit/finish notify it.
        self._work = threading.Condition(self._lock)
        #: Blocking submitters wait here; claims notify it.
        self._space = threading.Condition(self._lock)
        #: drain() waits here; the last finishing item notifies it.
        self._idle = threading.Condition(self._lock)
        self._keys: Dict[Hashable, _KeyState] = {}
        self._ready: List[Deque[Hashable]] = [deque() for _ in range(dispatchers)]
        self._queued = 0     # admission-controlled backlog
        self._pending = 0    # queued + in flight (drain waits on zero)
        self._executed = [0] * dispatchers
        self._stolen = [0] * dispatchers
        self._busy = [False] * dispatchers
        self._absorbed = 0
        self._stop = False
        self._threads = [
            threading.Thread(
                target=self._run, args=(index,),
                name=f"repro-dispatcher-{index}", daemon=True,
            )
            for index in range(dispatchers)
        ]
        for thread in self._threads:
            thread.start()

    # --------------------------------------------------------------- routing

    def home(self, key: Hashable) -> int:
        """The dispatcher a key is affine to — a stable, seedless hash, so
        routing is reproducible across runs (``hash()`` is randomized)."""
        return stable_key_hash(key) % self.dispatchers

    # ---------------------------------------------------------------- submit

    def submit(
        self,
        key: Hashable,
        item: Any,
        *,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> None:
        """Queue ``item`` under ``key``.

        Raises :class:`QueueFullError` when the global bound is hit and the
        submit is non-blocking (or the blocking wait times out), and
        :class:`ServiceClosedError` once the scheduler is closing.
        """
        with self._space:
            if self._stop:
                raise ServiceClosedError("the scheduler has been closed")
            if self._queued >= self.max_queue:
                if not block:
                    raise QueueFullError(
                        f"request queue is full ({self.max_queue} requests); "
                        f"retry, raise max_queue, or use a blocking submit"
                    )
                if not self._space.wait_for(
                    lambda: self._stop or self._queued < self.max_queue,
                    timeout,
                ):
                    raise QueueFullError(
                        f"request queue stayed full ({self.max_queue} "
                        f"requests) for {timeout}s"
                    )
                if self._stop:
                    raise ServiceClosedError("the scheduler has been closed")
            state = self._keys.get(key)
            if state is None:
                state = self._keys[key] = _KeyState(self.home(key))
            state.queue.append(item)
            self._queued += 1
            self._pending += 1
            self._mark_ready_locked(key, state)

    def _mark_ready_locked(self, key: Hashable, state: _KeyState) -> None:
        """List a key on its home dispatcher if it is claimable."""
        if state.queue and not state.inflight and not state.ready:
            state.ready = True
            self._ready[state.home].append(key)
            self._work.notify_all()

    def withdraw(self, key: Hashable, item: Any) -> bool:
        """Remove one still-queued item (``False`` if already claimed).

        The cancellation fast path: a withdrawn item never reaches a
        dispatcher, its queue slot is released to blocking submitters, and
        an emptied key is delisted so it cannot wake a dispatcher for
        nothing.  Items already claimed (in flight) are left alone — their
        cancellation happens cooperatively inside ``execute``.
        """
        with self._lock:
            state = self._keys.get(key)
            if state is None:
                return False
            try:
                state.queue.remove(item)
            except ValueError:
                return False
            self._queued -= 1
            self._pending -= 1
            self._space.notify_all()
            if not state.queue and state.ready:
                # Delist the key wherever it sits: stealing may have parked
                # it on a non-home ready list.
                state.ready = False
                for ready in self._ready:
                    try:
                        ready.remove(key)
                        break
                    except ValueError:
                        continue
            if not state.queue and not state.inflight:
                self._keys.pop(key, None)
            if self._pending == 0:
                self._idle.notify_all()
            return True

    # ------------------------------------------------------------ dispatchers

    def _claim_locked(self, me: int) -> Optional[Tuple[Hashable, _KeyState, Any]]:
        """Take one item: own ready keys first, then steal.

        Ready keys have no in-flight request by construction, so a steal
        can never run a key concurrently with its home dispatcher.
        """
        key: Optional[Hashable] = None
        if self._ready[me]:
            key = self._ready[me].popleft()
        elif self.steal:
            for offset in range(1, self.dispatchers):
                other = (me + offset) % self.dispatchers
                if self._ready[other]:
                    key = self._ready[other].popleft()
                    self._stolen[me] += 1
                    break
        if key is None:
            return None
        state = self._keys[key]
        state.ready = False
        state.inflight = True
        item = state.queue.popleft()
        self._queued -= 1
        self._space.notify_all()
        return key, state, item

    def claim_extra(self, key: Hashable, limit: int) -> List[Any]:
        """Absorb up to ``limit`` queued items of a key currently in flight.

        Called by a fused executor *while it holds the key* (between ticks),
        so the items it receives still execute one key at a time, on the one
        thread already running the key — the work-stealing restriction is
        relaxed by absorption rather than by concurrent claims.  Each item's
        admission slot is released immediately; the caller must report every
        absorbed item finished via :meth:`extra_done` (the primary claimed
        item stays accounted by the dispatcher loop as usual).  Returns an
        empty list when the key is not in flight or has no backlog.
        """
        if limit <= 0:
            return []
        with self._lock:
            state = self._keys.get(key)
            if state is None or not state.inflight:
                return []
            items: List[Any] = []
            while state.queue and len(items) < limit:
                items.append(state.queue.popleft())
            if items:
                self._queued -= len(items)
                self._absorbed += len(items)
                self._space.notify_all()
            return items

    def extra_done(self, key: Hashable) -> None:
        """Report one absorbed item finished (pairs with :meth:`claim_extra`)."""
        with self._lock:
            self._pending -= 1
            if self._pending == 0:
                self._idle.notify_all()

    def _run(self, me: int) -> None:
        while True:
            with self._work:
                claimed = self._claim_locked(me)
                while claimed is None:
                    if self._stop:
                        return  # nothing claimable anywhere: drained
                    self._work.wait()
                    claimed = self._claim_locked(me)
                self._busy[me] = True
            key, state, item = claimed
            try:
                self._execute(item)
            finally:
                with self._lock:
                    self._busy[me] = False
                    self._executed[me] += 1
                    state.inflight = False
                    self._pending -= 1
                    if state.queue:
                        # Back of the *home* list: fairness round-robin, and
                        # stolen keys return to their own dispatcher.
                        self._mark_ready_locked(key, state)
                    else:
                        # Keep the key space bounded: an idle, empty key is
                        # rebuilt from the hash on its next submission.
                        self._keys.pop(key, None)
                    if self._pending == 0:
                        self._idle.notify_all()

    # ------------------------------------------------------------- lifecycle

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until no work is queued or in flight (``False`` on timeout)."""
        with self._idle:
            return self._idle.wait_for(lambda: self._pending == 0, timeout)

    def close(self, *, cancel: bool = False) -> List[Any]:
        """Stop the dispatcher fleet.  Idempotent.

        With ``cancel=False`` dispatchers finish every queued item before
        exiting; with ``cancel=True`` queued items are withdrawn and
        returned to the caller (to resolve as cancelled) and only in-flight
        items complete.  Blocking submitters are woken with
        :class:`ServiceClosedError` either way.
        """
        cancelled: List[Any] = []
        with self._lock:
            self._stop = True
            if cancel:
                for key in list(self._keys):
                    state = self._keys[key]
                    cancelled.extend(state.queue)
                    state.queue.clear()
                    state.ready = False
                    if not state.inflight:
                        self._keys.pop(key)
                for ready in self._ready:
                    ready.clear()
                self._queued -= len(cancelled)
                self._pending -= len(cancelled)
                if self._pending == 0:
                    self._idle.notify_all()
            self._work.notify_all()
            self._space.notify_all()
        for thread in self._threads:
            thread.join()
        return cancelled

    # ----------------------------------------------------------------- stats

    def stats(self) -> SchedulerStats:
        """Snapshot of queue depth, flight count and per-dispatcher counters."""
        with self._lock:
            return SchedulerStats(
                dispatchers=self.dispatchers,
                queue_depth=self._queued,
                in_flight=self._pending - self._queued,
                keys=len(self._keys),
                dispatcher_stats=tuple(
                    DispatcherStats(
                        index=index,
                        executed=self._executed[index],
                        stolen=self._stolen[index],
                        busy=self._busy[index],
                    )
                    for index in range(self.dispatchers)
                ),
                absorbed=self._absorbed,
            )
