"""The service's wire format: JSON-lines requests in, JSON-lines results out.

``repro serve`` speaks this protocol over stdin/stdout so any process that
can write JSON can drive a warm explanation service.  One request per line::

    {"id": "r1", "block": "add rcx, rax; mov rdx, rcx; pop rbx", "seed": 0}
    {"id": "r2", "blocks": ["div rcx", "add rax, rbx"], "model": "uica"}
    {"id": "r3", "op": "stats"}       # introspection, answered in-band
    add rcx, rax; mov rdx, rcx        # bare text is sugar for {"block": ...}

and one response line per request, in submission order::

    {"id": "r1", "status": "done", "model": "crude", "uarch": "hsw",
     "seconds": 0.41, "explanations": [{...}, ...]}

``id`` is the client's correlation key (echoed verbatim; the service's own
request id is returned as ``request_id``).  Failures come back in-band with
``"status": "failed"`` and an ``error`` string — the stream keeps serving.

Besides explanation requests the protocol carries *operations*:
``{"op": "stats"}`` answers with the service's accounting snapshot (queue
depth, pool occupancy, per-dispatcher counters, failure/resilience and
continuous-batching/fusion counters; see :func:`stats_to_dict`), and
``{"op": "cancel", "target":
"r1"}`` cancels the caller's still-outstanding request whose client id is
``target`` — the cancellation *acts* the moment the op line is read (a
queued request is withdrawn, a running one stops at its next KL-LUCB
round), while the op's own response is answered in the same per-connection
submission order as every other response.  Explanation requests may carry
``"deadline"``: a server-side budget in seconds from admission.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, TextIO, Tuple, Union

from repro.bb.block import BasicBlock
from repro.reporting.export import explanation_to_dict
from repro.service.core import (
    ExplanationRequest,
    ExplanationService,
    RequestStatus,
    ServiceResult,
    ServiceStats,
)
from repro.utils.errors import ReproError, ServiceError

#: Operation names the protocol understands besides explanation requests.
KNOWN_OPS = ("stats", "cancel")

#: Every field an explanation request may carry on the wire (the schema
#: :func:`request_from_dict` reads).  The op/request mixing guard checks
#: against this same set, so adding a field here keeps both in step.
REQUEST_FIELDS = frozenset(
    {"block", "blocks", "seed", "model", "uarch", "shards", "deadline"}
)


@dataclass(frozen=True)
class ServiceOp:
    """A non-explanation protocol request (``{"op": "stats"}`` or
    ``{"op": "cancel", "target": <client id>}``)."""

    op: str
    target: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op not in KNOWN_OPS:
            raise ServiceError(
                f"unknown op {self.op!r}; known ops: {', '.join(KNOWN_OPS)}"
            )
        if self.op == "cancel" and not self.target:
            raise ServiceError(
                "a cancel op needs a 'target' (the client id of the request "
                "to cancel)"
            )


def request_from_dict(payload: Dict[str, object]) -> ExplanationRequest:
    """Build an :class:`ExplanationRequest` from one decoded JSON object."""
    if "block" in payload and "blocks" in payload:
        raise ServiceError("request has both 'block' and 'blocks'")
    if "block" in payload:
        texts = [str(payload["block"])]
    elif "blocks" in payload:
        blocks_field = payload["blocks"]
        if not isinstance(blocks_field, (list, tuple)):
            raise ServiceError("'blocks' must be a list of block texts")
        texts = [str(text) for text in blocks_field]
    else:
        raise ServiceError("request needs a 'block' or 'blocks' field")
    blocks = tuple(
        BasicBlock.from_text(text.replace(";", "\n")) for text in texts
    )
    # Absent means the fleet default ("auto"); an explicit JSON null opts a
    # request out of sharding (the sequential loop).
    shards = payload.get("shards", "auto")
    if shards is not None and not isinstance(shards, str):
        try:
            shards = int(shards)  # type: ignore[arg-type]
        except (TypeError, ValueError) as error:
            raise ServiceError(
                f"'shards' must be an integer, a string or null, "
                f"got {shards!r}"
            ) from error
    try:
        seed = int(payload.get("seed", 0))  # type: ignore[arg-type]
    except (TypeError, ValueError) as error:
        # Must be a ServiceError: anything else would escape the in-band
        # failure path and kill the stdio stream (or silently drop a socket
        # connection) on one malformed request.
        raise ServiceError(
            f"'seed' must be an integer, got {payload.get('seed')!r}"
        ) from error
    deadline = payload.get("deadline")
    if deadline is not None:
        try:
            deadline = float(deadline)  # type: ignore[arg-type]
        except (TypeError, ValueError) as error:
            raise ServiceError(
                f"'deadline' must be positive seconds, got "
                f"{payload.get('deadline')!r}"
            ) from error
    return ExplanationRequest(
        blocks=blocks,
        seed=seed,
        model=payload.get("model"),  # type: ignore[arg-type]
        uarch=payload.get("uarch"),  # type: ignore[arg-type]
        shards=shards,  # type: ignore[arg-type]
        deadline=deadline,  # type: ignore[arg-type]
    )


def request_from_line(
    line: str,
) -> Tuple[Optional[str], Union[ExplanationRequest, ServiceOp]]:
    """Decode one protocol line into ``(client id, request-or-op)``.

    Lines starting with ``{`` are JSON requests; anything else is treated as
    bare block text (instructions separated by ``;`` or the line is one
    instruction), with no client id.  A JSON object carrying an ``op`` field
    decodes to a :class:`ServiceOp` instead of an explanation request.
    """
    stripped = line.strip()
    if not stripped:
        raise ServiceError("empty request line")
    if stripped.startswith("["):
        raise ServiceError("request line must decode to a JSON object")
    if stripped.startswith("{"):
        try:
            payload = json.loads(stripped)
        except json.JSONDecodeError as error:
            raise ServiceError(f"request line is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise ServiceError("request line must decode to a JSON object")
        raw_id = payload.get("id")
        client_id = None if raw_id is None else str(raw_id)
        try:
            if "op" in payload:
                mixed = sorted(REQUEST_FIELDS & payload.keys())
                if mixed:
                    # Answering the op would silently drop the explanation
                    # payload; surface the client bug instead.
                    raise ServiceError(
                        f"an op request cannot carry explanation fields "
                        f"({', '.join(mixed)})"
                    )
                raw_target = payload.get("target")
                target = None if raw_target is None else str(raw_target)
                return client_id, ServiceOp(str(payload["op"]), target=target)
            return client_id, request_from_dict(payload)
        except ReproError as error:
            # Tag the failure with the client's correlation id so the error
            # response still routes back to the right request.
            error.client_id = client_id  # type: ignore[attr-defined]
            raise
    return None, request_from_dict({"block": stripped})


def result_to_dict(
    result: ServiceResult, client_id: Optional[str] = None
) -> Dict[str, object]:
    """A JSON-safe dictionary for one service result."""
    payload: Dict[str, object] = {
        "id": client_id,
        "request_id": result.request_id,
        "status": result.status.value,
        "model": result.model,
        "uarch": result.uarch,
        "seconds": round(result.seconds, 4),
    }
    if result.status is RequestStatus.DONE:
        payload["explanations"] = [
            explanation_to_dict(explanation) for explanation in result.explanations
        ]
    else:
        payload["error"] = result.error
    return payload


def _tier_to_dict(tier) -> Dict[str, object]:
    return {
        "hits": tier.hits,
        "misses": tier.misses,
        "stores": tier.stores,
        "evictions": tier.evictions,
        "corrupt": tier.corrupt,
        "entries": tier.entries,
        "bytes": tier.bytes,
    }


def stats_to_dict(
    stats: ServiceStats, client_id: Optional[str] = None
) -> Dict[str, object]:
    """The wire response for a ``stats`` op: queue depth, pool occupancy and
    per-dispatcher counters, JSON-safe."""
    pool = stats.pool
    return {
        "id": client_id,
        "status": "done",
        "op": "stats",
        "stats": {
            "submitted": stats.submitted,
            "served": stats.served,
            "failed": stats.failed,
            "cancelled": stats.cancelled,
            "queue_depth": stats.queue_depth,
            "in_flight": stats.in_flight,
            "dispatchers": stats.dispatchers,
            "resilience": {
                "deadline_expired": stats.deadline_expired,
                "worker_restarts": stats.worker_restarts,
                "worker_retries": stats.worker_retries,
                "worker_fallbacks": stats.worker_fallbacks,
                "checkpoint_skips": stats.checkpoint_skips,
            },
            "fusion": None
            if stats.fusion is None
            else {
                "enabled": stats.fusion.enabled,
                "max_fused_requests": stats.fusion.max_fused_requests,
                "ticks": stats.fusion.ticks,
                "rounds_fused": stats.fusion.rounds_fused,
                "requests_fused": stats.fusion.requests_fused,
                "shared_hits": stats.fusion.shared_hits,
                "mean_occupancy": round(stats.fusion.mean_occupancy, 4),
                "occupancy": {
                    str(occupancy): ticks
                    for occupancy, ticks in stats.fusion.occupancy
                },
                "absorbed": stats.absorbed,
            },
            "result_cache": None
            if stats.result_cache is None
            else {
                "path": stats.result_cache.path,
                "hits": stats.result_cache.hits,
                "lookups": stats.result_cache.lookups,
                "hit_rate": round(stats.result_cache.hit_rate, 4),
                "memory": _tier_to_dict(stats.result_cache.memory),
                "disk": None
                if stats.result_cache.disk is None
                else _tier_to_dict(stats.result_cache.disk),
            },
            "dispatcher_stats": [
                {
                    "index": d.index,
                    "executed": d.executed,
                    "stolen": d.stolen,
                    "busy": d.busy,
                }
                for d in stats.dispatcher_stats
            ],
            "pool": None
            if pool is None
            else {
                "sessions": pool.sessions,
                "max_sessions": pool.max_sessions,
                "leased": pool.leased,
                "occupancy": round(pool.occupancy, 4),
                "builds": pool.builds,
                "hits": pool.hits,
                "evictions": pool.evictions,
            },
            "sessions": [list(key) for key in stats.sessions],
        },
    }


def _error_line(client_id: Optional[str], message: str) -> str:
    return json.dumps(
        {"id": client_id, "status": "failed", "error": message}
    )


def cancel_to_dict(
    service: ExplanationService,
    live_requests: Dict[str, str],
    client_id: Optional[str],
    target: str,
) -> Dict[str, object]:
    """Act on one cancel op and build its response payload.

    ``live_requests`` maps the stream's outstanding client ids to service
    request ids; an unknown target (never submitted, bare-text, or already
    answered) fails in-band without touching the service.  ``cancelled``
    reports whether the cancellation could still take effect (the target's
    own response will show ``cancelled``/``failed`` accordingly).
    """
    request_id = live_requests.get(target)
    if request_id is None:
        return {
            "id": client_id,
            "status": "failed",
            "op": "cancel",
            "target": target,
            "error": (
                f"unknown cancel target {target!r} "
                f"(never submitted, or already answered)"
            ),
        }
    try:
        effective = service.cancel(request_id)
    except ServiceError:
        effective = False  # finished and collected between lookup and cancel
    return {
        "id": client_id,
        "status": "done",
        "op": "cancel",
        "target": target,
        "cancelled": bool(effective),
    }


def serve_stream(
    service: ExplanationService,
    lines: Iterable[str],
    out: TextIO,
    max_pending: int = 1024,
) -> int:
    """Pump a request stream through ``service``; returns served-request count.

    Requests are submitted as they are read — the bounded queue throttles
    reading when the dispatchers fall behind — and responses are written in
    submission order, flushed as soon as each one completes, so a slow later
    request never delays an earlier answer and pipelined clients stream
    results.  A ``stats`` op is answered in the same submission order, its
    snapshot taken when its turn to answer comes.  Ops and undecodable
    lines never transit the service queue, so the response backlog gets
    its own bound: past ``max_pending`` outstanding responses the stream
    stops reading until the backlog drains (pure backpressure — nothing is
    dropped).  Undecodable lines produce an in-band ``failed`` response
    and do not stop the stream.  A ``cancel`` op acts the moment its line
    is read — that is the whole point: the target may be queued or running
    *right now* — while its acknowledgement keeps submission order like
    every other response.  The caller keeps ownership of ``service``
    (and closes it).
    """
    #: Submission-ordered response backlog.  Entries are tagged:
    #: ``("req", client id, request id)`` waits on the service,
    #: ``("stats", client id, None)`` snapshots when its turn comes, and
    #: ``("done", client id, payload)`` was answered at read time (cancel
    #: acknowledgements).
    pending: "deque[Tuple[str, Optional[str], object]]" = deque()
    #: Outstanding client id → service request id (cancel targeting);
    #: entries leave as their responses flush, so a reused client id
    #: always targets its latest outstanding request.
    live_requests: Dict[str, str] = {}
    served = 0

    def flush(block: bool) -> int:
        count = 0
        while pending:
            kind, client_id, extra = pending[0]
            if kind == "stats":
                # Ops are answered but not counted: the served total must
                # agree with the service's own `served` accounting, which
                # counts explanation requests only.
                payload = stats_to_dict(service.stats(), client_id)
            elif kind == "done":
                payload = extra  # type: ignore[assignment]
            else:
                request_id = str(extra)
                if not block and not service.poll(request_id).finished:
                    break
                payload = result_to_dict(service.result(request_id), client_id)
                if client_id is not None and live_requests.get(client_id) == request_id:
                    del live_requests[client_id]
                count += 1
            out.write(json.dumps(payload) + "\n")
            out.flush()
            pending.popleft()
        return count

    for line in lines:
        if not line.strip():
            continue
        try:
            client_id, request = request_from_line(line)
        except ReproError as error:
            out.write(
                _error_line(getattr(error, "client_id", None), str(error)) + "\n"
            )
            out.flush()
            continue
        if isinstance(request, ServiceOp):
            if request.op == "cancel":
                assert request.target is not None
                payload = cancel_to_dict(
                    service, live_requests, client_id, request.target
                )
                pending.append(("done", client_id, payload))
            else:
                pending.append(("stats", client_id, None))
            served += flush(block=False)
            if len(pending) >= max_pending:
                served += flush(block=True)
            continue
        try:
            request_id = service.submit(request)
        except ReproError as error:
            out.write(_error_line(client_id, str(error)) + "\n")
            out.flush()
            continue
        if client_id is not None:
            live_requests[client_id] = request_id
        pending.append(("req", client_id, request_id))
        served += flush(block=False)
        if len(pending) >= max_pending:
            served += flush(block=True)
    served += flush(block=True)
    return served
