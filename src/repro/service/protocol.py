"""The service's wire format: JSON-lines requests in, JSON-lines results out.

``repro serve`` speaks this protocol over stdin/stdout so any process that
can write JSON can drive a warm explanation service.  One request per line::

    {"id": "r1", "block": "add rcx, rax; mov rdx, rcx; pop rbx", "seed": 0}
    {"id": "r2", "blocks": ["div rcx", "add rax, rbx"], "model": "uica"}
    add rcx, rax; mov rdx, rcx        # bare text is sugar for {"block": ...}

and one response line per request, in submission order::

    {"id": "r1", "status": "done", "model": "crude", "uarch": "hsw",
     "seconds": 0.41, "explanations": [{...}, ...]}

``id`` is the client's correlation key (echoed verbatim; the service's own
request id is returned as ``request_id``).  Failures come back in-band with
``"status": "failed"`` and an ``error`` string — the stream keeps serving.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, Iterable, Optional, TextIO, Tuple

from repro.bb.block import BasicBlock
from repro.reporting.export import explanation_to_dict
from repro.service.core import (
    ExplanationRequest,
    ExplanationService,
    RequestStatus,
    ServiceResult,
)
from repro.utils.errors import ReproError, ServiceError


def request_from_dict(payload: Dict[str, object]) -> ExplanationRequest:
    """Build an :class:`ExplanationRequest` from one decoded JSON object."""
    if "block" in payload and "blocks" in payload:
        raise ServiceError("request has both 'block' and 'blocks'")
    if "block" in payload:
        texts = [str(payload["block"])]
    elif "blocks" in payload:
        blocks_field = payload["blocks"]
        if not isinstance(blocks_field, (list, tuple)):
            raise ServiceError("'blocks' must be a list of block texts")
        texts = [str(text) for text in blocks_field]
    else:
        raise ServiceError("request needs a 'block' or 'blocks' field")
    blocks = tuple(
        BasicBlock.from_text(text.replace(";", "\n")) for text in texts
    )
    # Absent means the fleet default ("auto"); an explicit JSON null opts a
    # request out of sharding (the sequential loop).
    shards = payload.get("shards", "auto")
    if shards is not None and not isinstance(shards, str):
        try:
            shards = int(shards)  # type: ignore[arg-type]
        except (TypeError, ValueError) as error:
            raise ServiceError(
                f"'shards' must be an integer, a string or null, "
                f"got {shards!r}"
            ) from error
    try:
        seed = int(payload.get("seed", 0))  # type: ignore[arg-type]
    except (TypeError, ValueError) as error:
        # Must be a ServiceError: anything else would escape the in-band
        # failure path and kill the stdio stream (or silently drop a socket
        # connection) on one malformed request.
        raise ServiceError(
            f"'seed' must be an integer, got {payload.get('seed')!r}"
        ) from error
    return ExplanationRequest(
        blocks=blocks,
        seed=seed,
        model=payload.get("model"),  # type: ignore[arg-type]
        uarch=payload.get("uarch"),  # type: ignore[arg-type]
        shards=shards,  # type: ignore[arg-type]
    )


def request_from_line(line: str) -> Tuple[Optional[str], ExplanationRequest]:
    """Decode one protocol line into ``(client id, request)``.

    Lines starting with ``{`` are JSON requests; anything else is treated as
    bare block text (instructions separated by ``;`` or the line is one
    instruction), with no client id.
    """
    stripped = line.strip()
    if not stripped:
        raise ServiceError("empty request line")
    if stripped.startswith("["):
        raise ServiceError("request line must decode to a JSON object")
    if stripped.startswith("{"):
        try:
            payload = json.loads(stripped)
        except json.JSONDecodeError as error:
            raise ServiceError(f"request line is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise ServiceError("request line must decode to a JSON object")
        raw_id = payload.get("id")
        client_id = None if raw_id is None else str(raw_id)
        try:
            return client_id, request_from_dict(payload)
        except ReproError as error:
            # Tag the failure with the client's correlation id so the error
            # response still routes back to the right request.
            error.client_id = client_id  # type: ignore[attr-defined]
            raise
    return None, request_from_dict({"block": stripped})


def result_to_dict(
    result: ServiceResult, client_id: Optional[str] = None
) -> Dict[str, object]:
    """A JSON-safe dictionary for one service result."""
    payload: Dict[str, object] = {
        "id": client_id,
        "request_id": result.request_id,
        "status": result.status.value,
        "model": result.model,
        "uarch": result.uarch,
        "seconds": round(result.seconds, 4),
    }
    if result.status is RequestStatus.DONE:
        payload["explanations"] = [
            explanation_to_dict(explanation) for explanation in result.explanations
        ]
    else:
        payload["error"] = result.error
    return payload


def _error_line(client_id: Optional[str], message: str) -> str:
    return json.dumps(
        {"id": client_id, "status": "failed", "error": message}
    )


def serve_stream(
    service: ExplanationService,
    lines: Iterable[str],
    out: TextIO,
) -> int:
    """Pump a request stream through ``service``; returns served-request count.

    Requests are submitted as they are read — the bounded queue throttles
    reading when the dispatcher falls behind — and responses are written in
    submission order, flushed as soon as each one completes, so a slow later
    request never delays an earlier answer and pipelined clients stream
    results.  Undecodable lines produce an in-band ``failed`` response and do
    not stop the stream.  The caller keeps ownership of ``service`` (and
    closes it).
    """
    pending: "deque[Tuple[Optional[str], str]]" = deque()
    served = 0

    def flush(block: bool) -> int:
        count = 0
        while pending:
            client_id, request_id = pending[0]
            if not block and not service.poll(request_id).finished:
                break
            result = service.result(request_id)
            out.write(json.dumps(result_to_dict(result, client_id)) + "\n")
            out.flush()
            pending.popleft()
            count += 1
        return count

    for line in lines:
        if not line.strip():
            continue
        try:
            client_id, request = request_from_line(line)
        except ReproError as error:
            out.write(
                _error_line(getattr(error, "client_id", None), str(error)) + "\n"
            )
            out.flush()
            continue
        try:
            request_id = service.submit(request)
        except ReproError as error:
            out.write(_error_line(client_id, str(error)) + "\n")
            out.flush()
            continue
        pending.append((client_id, request_id))
        served += flush(block=False)
    served += flush(block=True)
    return served
