"""A small TCP client for the explanation service's JSON-lines protocol.

:class:`ServiceClient` is the caller-side counterpart of
:class:`~repro.service.transport.SocketServer`: connect, submit requests
(each tagged with a generated correlation id), poll or block for the
responses, all over one socket.  Results arrive as the decoded JSON response
objects of the wire protocol — ``status``/``explanations``/``error`` — not
as live :class:`~repro.explain.explanation.Explanation` objects; the client
is deliberately transport-thin so tests and benchmarks measure the wire, not
a reconstruction layer.

A background reader thread routes each response line to its submitter by
correlation id, so several threads may share one client (submissions are
serialised on a send lock) and slow requests never block the collection of
fast ones::

    with ServiceClient(host, port) as client:
        request_id = client.submit("div rcx; add rax, rbx", seed=7)
        response = client.result(request_id, timeout=60)
        assert response["status"] == "done"

The client is resilient by default (tunable via :class:`RetryPolicy`):
the TCP dial retries with capped exponential backoff, a submission that
finds the connection dead reconnects and resubmits under the same
correlation id (idempotent: the old connection's copy died with the
connection — the server answers per connection, so no duplicate response
can arrive), and :meth:`explain` retries requests the server sheds with a
queue-full failure.  Requests that were *in flight* when the connection
died are failed, never silently retried: the client cannot know whether
the server ran them.
"""

from __future__ import annotations

import itertools
import json
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.bb.block import BasicBlock
from repro.utils.errors import ServiceError, ServiceTimeoutError

#: Anything accepted as the blocks of one request: inline text (instructions
#: separated by ``;`` or newlines), a parsed block, or a sequence of either.
BlockSource = Union[str, BasicBlock, Sequence[Union[str, BasicBlock]]]

_UNSET = object()


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the client tries before giving up on the network.

    ``attempts`` counts *retries* (0 disables them: first failure raises).
    One policy governs all three retry surfaces — the TCP dial, the
    reconnect-and-resubmit on a dead connection, and :meth:`ServiceClient.explain`'s
    queue-full retries — because they share one character: the server is
    healthy, the path to it momentarily is not.  Delays grow exponentially
    from ``backoff``, capped at ``max_backoff``; deterministic on purpose
    (seeded tests must not race a random sleep).
    """

    attempts: int = 2
    backoff: float = 0.05
    max_backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 0:
            raise ValueError("attempts must be >= 0")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")
        if self.max_backoff < self.backoff:
            raise ValueError("max_backoff must be >= backoff")

    def delay(self, attempt: int) -> float:
        """Seconds to sleep before retry number ``attempt`` (0-based)."""
        return min(self.backoff * (2.0**attempt), self.max_backoff)


def _block_text(block: Union[str, BasicBlock]) -> str:
    return block.text if isinstance(block, BasicBlock) else str(block)


class ServiceClient:
    """Drive a :class:`~repro.service.transport.SocketServer` over TCP.

    Parameters
    ----------
    host / port:
        The server's bound address (``SocketServer.address``).
    timeout:
        Default number of seconds :meth:`result` waits before raising
        (``None`` = wait forever); each call may override it.
    connect_timeout:
        Bound on the TCP connect itself.
    retry:
        The client's :class:`RetryPolicy` (``None`` = the defaults: two
        retries, 50 ms exponential backoff).  ``RetryPolicy(attempts=0)``
        restores fail-fast behaviour.

    The client is a context manager; :meth:`close` is idempotent and safe
    while requests are outstanding (their :meth:`result` calls raise
    :class:`~repro.utils.errors.ServiceError` instead of hanging).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = None,
        connect_timeout: float = 10.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.retry = retry or RetryPolicy()
        self._sock: Optional[socket.socket] = None
        self._reader: Optional[threading.Thread] = None
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._responses: Dict[str, dict] = {}
        self._events: Dict[str, threading.Event] = {}
        #: Outstanding request ids in submission order.  The server answers
        #: each connection strictly in submission order, so an *id-less*
        #: response (e.g. the in-band error for a line the server discarded
        #: as oversized before it could read our id) is attributable to the
        #: oldest outstanding request — without this, its waiter would hang.
        self._order: "deque[str]" = deque()
        #: Responses that matched no outstanding request (e.g. a capacity
        #: refusal arriving before anything was submitted).
        self.unmatched: List[dict] = []
        self._closed = False
        self._connection_error: Optional[str] = None

    # ------------------------------------------------------------- lifecycle

    def connect(self) -> "ServiceClient":
        """Open the socket and start the response reader.  Idempotent.

        The TCP dial happens *outside* the lock (a black-holed host must
        not stall concurrent ``close()``/``result()`` callers for the whole
        connect timeout) and the winner installs under it: racing first
        submits share one connection, a losing dial is closed on the spot,
        and a dial finishing after ``close()`` never installs a socket on a
        closed client.  A refused or failed dial is retried with the
        client's :class:`RetryPolicy` backoff (a server mid-restart is the
        expected cause); the last attempt's ``OSError`` propagates once the
        retries are spent.
        """
        with self._lock:
            if self._sock is not None:
                return self
            if self._closed:
                raise ServiceError("this service client has been closed")
        attempt = 0
        while True:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
                break
            except OSError:
                if attempt >= self.retry.attempts or self._closed:
                    raise
                time.sleep(self.retry.delay(attempt))
                attempt += 1
        # The reader blocks on recv as long as the connection lives;
        # result() timeouts are enforced on the waiting side, not the
        # socket.
        sock.settimeout(None)
        with self._lock:
            if not self._closed and self._sock is None:
                self._sock = sock
                self._reader = threading.Thread(
                    target=self._read_loop, name="repro-client-reader", daemon=True
                )
                self._reader.start()
                return self
            lost_to_peer = self._sock is not None
        try:
            sock.close()
        except OSError:
            pass
        if lost_to_peer:
            return self  # another thread's dial won; share its connection
        raise ServiceError("this service client has been closed")

    def close(self) -> None:
        """Close the socket and fail any still-waiting :meth:`result` calls."""
        with self._lock:
            # Under the same lock as connect(): a close racing a first
            # submit must either see the new socket (and close it) or make
            # the in-flight connect's _closed check fail — never let a
            # socket and reader thread be installed on a closed client.
            self._closed = True
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        if self._reader is not None:
            self._reader.join(5.0)
        self._fail_waiters("client closed")

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------------- submit

    def submit(
        self,
        blocks: BlockSource,
        *,
        seed: int = 0,
        model: Optional[str] = None,
        uarch: Optional[str] = None,
        shards=_UNSET,
        deadline: Optional[float] = None,
    ) -> str:
        """Send one request; returns the correlation id to collect with.

        ``model``/``uarch`` default to the server's configured model;
        ``shards`` is sent only when given (the server's fleet default,
        ``"auto"``, applies otherwise — pass ``None`` explicitly to force
        the sequential loop).  ``deadline`` is the request's server-side
        budget in seconds from admission (``None`` = the server default).
        """
        payload: Dict[str, object] = {"seed": int(seed)}
        if isinstance(blocks, (str, BasicBlock)):
            payload["block"] = _block_text(blocks)
        else:
            payload["blocks"] = [_block_text(block) for block in blocks]
        if model is not None:
            payload["model"] = model
        if uarch is not None:
            payload["uarch"] = uarch
        if shards is not _UNSET:
            payload["shards"] = shards
        if deadline is not None:
            payload["deadline"] = float(deadline)
        return self._post(payload)

    def _post(self, payload: Dict[str, object]) -> str:
        """Tag ``payload`` with a fresh correlation id and send it.

        A send that finds the connection dead — a reconnect-worthy failure,
        not a closed client — tears the old socket down and resubmits the
        *same* line over a fresh connection (same correlation id, so the
        caller's handle stays valid).  The resubmit is idempotent: this
        request never reached the wire on the old connection, and the
        server answers per connection, so no duplicate response exists.
        """
        request_id = f"c{next(self._ids)}"
        # Serialize before registering the id: a non-JSON-safe payload must
        # raise with no state behind, not leave a phantom entry in _order
        # that id-less responses would be misattributed to.
        line = json.dumps({"id": request_id, **payload}) + "\n"
        attempt = 0
        while True:
            self.connect()
            try:
                self._send(request_id, line)
                return request_id
            except ServiceError:
                if self._closed or attempt >= self.retry.attempts:
                    raise
                time.sleep(self.retry.delay(attempt))
                attempt += 1
                try:
                    self._reconnect()
                except OSError as error:
                    # The server was reachable once (we had a connection) and
                    # is not any more: keep submit's failure contract in-band
                    # rather than leaking the redial's socket error.
                    raise ServiceError(
                        f"cannot reconnect to {self.host}:{self.port}: {error}"
                    ) from error

    def _send(self, request_id: str, line: str) -> None:
        """Register the id and put ``line`` on the wire, atomically.

        The ``_order`` registration and the socket send happen under one
        ``_send_lock`` hold: were they separate, two racing submitters
        could register in one order and hit the wire in the other, and the
        oldest-outstanding attribution of id-less responses (see
        ``_order``) would cross-wire their replies.
        """
        with self._send_lock:
            with self._lock:
                if self._connection_error:
                    raise ServiceError(
                        f"connection to {self.host}:{self.port} is gone: "
                        f"{self._connection_error}"
                    )
                # Snapshot under the lock: a concurrent close() swaps _sock
                # to None, and this path must degrade to ServiceError, not
                # crash.
                sock = self._sock
                if sock is None:
                    raise ServiceError("this service client has been closed")
                self._events[request_id] = threading.Event()
                self._order.append(request_id)
            try:
                sock.sendall(line.encode("utf-8"))
            except OSError as error:
                with self._lock:
                    self._events.pop(request_id, None)
                    try:
                        self._order.remove(request_id)
                    except ValueError:
                        pass
                raise ServiceError(
                    f"cannot send to {self.host}:{self.port}: {error}"
                ) from error

    def _reconnect(self) -> None:
        """Replace a dead connection with a fresh one.

        Requests that were outstanding on the old connection have already
        been failed by its reader (``_fail_waiters``): the client cannot
        know whether the server ran them, so they are never retried here —
        only the *current* submission, which provably never reached the
        old wire, is.
        """
        with self._lock:
            if self._closed:
                raise ServiceError("this service client has been closed")
            sock, self._sock = self._sock, None
            reader, self._reader = self._reader, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        if reader is not None:
            # The old reader must finish its epitaph before the error slate
            # is wiped, or its _fail_waiters could repoison the new
            # connection's state.
            reader.join(5.0)
        with self._lock:
            self._connection_error = None
        self.connect()

    # --------------------------------------------------------------- collect

    def poll(self, request_id: str) -> Optional[dict]:
        """The response for ``request_id`` if it has arrived, else ``None``.

        Non-consuming: :meth:`result` still returns (and releases) it.
        """
        with self._lock:
            if request_id not in self._events and request_id not in self._responses:
                raise ServiceError(f"unknown request id {request_id!r}")
            return self._responses.get(request_id)

    def result(self, request_id: str, timeout: Optional[float] = _UNSET) -> dict:
        """Wait for — and consume — one response object.

        Raises :class:`~repro.utils.errors.ServiceTimeoutError` when the
        timeout elapses (the response stays collectable) and plain
        :class:`~repro.utils.errors.ServiceError` when the connection died
        before the response arrived.
        """
        if timeout is _UNSET:
            timeout = self.timeout
        with self._lock:
            event = self._events.get(request_id)
            if event is None and request_id not in self._responses:
                raise ServiceError(f"unknown request id {request_id!r}")
        if event is not None and not event.wait(timeout):
            raise ServiceTimeoutError(
                f"request {request_id!r} did not answer in {timeout}s"
            )
        with self._lock:
            self._events.pop(request_id, None)
            response = self._responses.pop(request_id, None)
        if response is None:
            raise ServiceError(
                f"connection to {self.host}:{self.port} closed before request "
                f"{request_id!r} was answered"
                + (f" ({self._connection_error})" if self._connection_error else "")
            )
        return response

    def explain(
        self,
        blocks: BlockSource,
        *,
        seed: int = 0,
        model: Optional[str] = None,
        uarch: Optional[str] = None,
        shards=_UNSET,
        deadline: Optional[float] = None,
        timeout: Optional[float] = _UNSET,
    ) -> List[dict]:
        """Synchronous convenience: submit, wait, unwrap (raises on failure).

        Returns the ``explanations`` payload — a list of JSON-safe
        explanation dictionaries (see
        :func:`repro.reporting.export.explanation_to_dict`).  A request the
        server sheds with a queue-full failure is resubmitted with the
        client's :class:`RetryPolicy` backoff before the failure is raised:
        shedding asks producers to back off and come back, so the client
        does exactly that.
        """
        attempt = 0
        while True:
            request_id = self.submit(
                blocks,
                seed=seed,
                model=model,
                uarch=uarch,
                shards=shards,
                deadline=deadline,
            )
            response = self.result(request_id, timeout=timeout)
            if response.get("status") == "done":
                return list(response["explanations"])
            error = str(response.get("error") or "")
            shed = "queue is full" in error or "queue stayed full" in error
            if shed and attempt < self.retry.attempts:
                time.sleep(self.retry.delay(attempt))
                attempt += 1
                continue
            raise ServiceError(
                f"request {request_id} {response.get('status')}: "
                f"{response.get('error')}"
            )

    def cancel(self, request_id: str, *, timeout: Optional[float] = _UNSET) -> bool:
        """Cancel an outstanding request via the ``cancel`` op.

        ``request_id`` is the correlation id :meth:`submit` returned.  The
        cancellation acts the moment the server reads the op line; the
        returned flag is the server's ``cancelled`` acknowledgement
        (``False`` = the request had already finished, its normal response
        stands).  The target's own :meth:`result` resolves either way —
        with ``status`` ``cancelled`` when the cancellation landed.
        """
        op_id = self._post({"op": "cancel", "target": request_id})
        response = self.result(op_id, timeout=timeout)
        if response.get("status") != "done":
            raise ServiceError(
                f"cancel of {request_id!r} {response.get('status')}: "
                f"{response.get('error')}"
            )
        return bool(response.get("cancelled"))

    def stats(self, *, timeout: Optional[float] = _UNSET) -> dict:
        """The server's accounting snapshot, via the ``stats`` op.

        Returns the decoded ``stats`` payload — request counters, queue
        depth, per-dispatcher counters, session-pool occupancy and the
        continuous-batching (``fusion``) counters (see
        :func:`repro.service.protocol.stats_to_dict`).  Answered in this
        connection's submission order like every other request.
        """
        request_id = self._post({"op": "stats"})
        response = self.result(request_id, timeout=timeout)
        if response.get("status") != "done":
            raise ServiceError(
                f"stats request {request_id} {response.get('status')}: "
                f"{response.get('error')}"
            )
        return dict(response["stats"])

    # ---------------------------------------------------------------- reader

    def _read_loop(self) -> None:
        sock = self._sock
        if sock is None:
            return
        buffer = bytearray()
        reason = "server closed the connection"
        while True:
            try:
                chunk = sock.recv(65536)
            except OSError as error:
                if not self._closed:
                    reason = f"socket error: {error}"
                chunk = b""
            if not chunk:
                break
            buffer.extend(chunk)
            while True:
                newline = buffer.find(b"\n")
                if newline < 0:
                    break
                line = bytes(buffer[:newline]).decode("utf-8", errors="replace")
                del buffer[: newline + 1]
                if line.strip():
                    self._route(line)
        self._fail_waiters(reason)

    def _route(self, line: str) -> None:
        try:
            response = json.loads(line)
        except json.JSONDecodeError:
            response = {"id": None, "status": "failed", "error": f"undecodable: {line}"}
        if not isinstance(response, dict):
            response = {"id": None, "status": "failed", "error": f"non-object: {line}"}
        request_id = response.get("id")
        with self._lock:
            event = self._events.get(request_id) if request_id else None
            if event is None and self._order:
                # Per-connection responses arrive in submission order, so an
                # uncorrelatable one answers the oldest outstanding request.
                request_id = self._order[0]
                event = self._events.get(request_id)
            if event is None:
                self.unmatched.append(response)
                return
            try:
                self._order.remove(request_id)
            except ValueError:
                pass
            self._responses[request_id] = response
            event.set()

    def _fail_waiters(self, reason: str) -> None:
        """Wake every outstanding result() with the connection's epitaph."""
        with self._lock:
            self._connection_error = reason
            events = list(self._events.values())
        for event in events:
            event.set()
