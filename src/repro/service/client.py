"""A small TCP client for the explanation service's JSON-lines protocol.

:class:`ServiceClient` is the caller-side counterpart of
:class:`~repro.service.transport.SocketServer`: connect, submit requests
(each tagged with a generated correlation id), poll or block for the
responses, all over one socket.  Results arrive as the decoded JSON response
objects of the wire protocol — ``status``/``explanations``/``error`` — not
as live :class:`~repro.explain.explanation.Explanation` objects; the client
is deliberately transport-thin so tests and benchmarks measure the wire, not
a reconstruction layer.

A background reader thread routes each response line to its submitter by
correlation id, so several threads may share one client (submissions are
serialised on a send lock) and slow requests never block the collection of
fast ones::

    with ServiceClient(host, port) as client:
        request_id = client.submit("div rcx; add rax, rbx", seed=7)
        response = client.result(request_id, timeout=60)
        assert response["status"] == "done"
"""

from __future__ import annotations

import itertools
import json
import socket
import threading
from collections import deque
from typing import Dict, List, Optional, Sequence, Union

from repro.bb.block import BasicBlock
from repro.utils.errors import ServiceError

#: Anything accepted as the blocks of one request: inline text (instructions
#: separated by ``;`` or newlines), a parsed block, or a sequence of either.
BlockSource = Union[str, BasicBlock, Sequence[Union[str, BasicBlock]]]

_UNSET = object()


def _block_text(block: Union[str, BasicBlock]) -> str:
    return block.text if isinstance(block, BasicBlock) else str(block)


class ServiceClient:
    """Drive a :class:`~repro.service.transport.SocketServer` over TCP.

    Parameters
    ----------
    host / port:
        The server's bound address (``SocketServer.address``).
    timeout:
        Default number of seconds :meth:`result` waits before raising
        (``None`` = wait forever); each call may override it.
    connect_timeout:
        Bound on the TCP connect itself.

    The client is a context manager; :meth:`close` is idempotent and safe
    while requests are outstanding (their :meth:`result` calls raise
    :class:`~repro.utils.errors.ServiceError` instead of hanging).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = None,
        connect_timeout: float = 10.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self._sock: Optional[socket.socket] = None
        self._reader: Optional[threading.Thread] = None
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._responses: Dict[str, dict] = {}
        self._events: Dict[str, threading.Event] = {}
        #: Outstanding request ids in submission order.  The server answers
        #: each connection strictly in submission order, so an *id-less*
        #: response (e.g. the in-band error for a line the server discarded
        #: as oversized before it could read our id) is attributable to the
        #: oldest outstanding request — without this, its waiter would hang.
        self._order: "deque[str]" = deque()
        #: Responses that matched no outstanding request (e.g. a capacity
        #: refusal arriving before anything was submitted).
        self.unmatched: List[dict] = []
        self._closed = False
        self._connection_error: Optional[str] = None

    # ------------------------------------------------------------- lifecycle

    def connect(self) -> "ServiceClient":
        """Open the socket and start the response reader.  Idempotent.

        The TCP dial happens *outside* the lock (a black-holed host must
        not stall concurrent ``close()``/``result()`` callers for the whole
        connect timeout) and the winner installs under it: racing first
        submits share one connection, a losing dial is closed on the spot,
        and a dial finishing after ``close()`` never installs a socket on a
        closed client.
        """
        with self._lock:
            if self._sock is not None:
                return self
            if self._closed:
                raise ServiceError("this service client has been closed")
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        # The reader blocks on recv as long as the connection lives;
        # result() timeouts are enforced on the waiting side, not the
        # socket.
        sock.settimeout(None)
        with self._lock:
            if not self._closed and self._sock is None:
                self._sock = sock
                self._reader = threading.Thread(
                    target=self._read_loop, name="repro-client-reader", daemon=True
                )
                self._reader.start()
                return self
            lost_to_peer = self._sock is not None
        try:
            sock.close()
        except OSError:
            pass
        if lost_to_peer:
            return self  # another thread's dial won; share its connection
        raise ServiceError("this service client has been closed")

    def close(self) -> None:
        """Close the socket and fail any still-waiting :meth:`result` calls."""
        with self._lock:
            # Under the same lock as connect(): a close racing a first
            # submit must either see the new socket (and close it) or make
            # the in-flight connect's _closed check fail — never let a
            # socket and reader thread be installed on a closed client.
            self._closed = True
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        if self._reader is not None:
            self._reader.join(5.0)
        self._fail_waiters("client closed")

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------------- submit

    def submit(
        self,
        blocks: BlockSource,
        *,
        seed: int = 0,
        model: Optional[str] = None,
        uarch: Optional[str] = None,
        shards=_UNSET,
    ) -> str:
        """Send one request; returns the correlation id to collect with.

        ``model``/``uarch`` default to the server's configured model;
        ``shards`` is sent only when given (the server's fleet default,
        ``"auto"``, applies otherwise — pass ``None`` explicitly to force
        the sequential loop).
        """
        payload: Dict[str, object] = {"seed": int(seed)}
        if isinstance(blocks, (str, BasicBlock)):
            payload["block"] = _block_text(blocks)
        else:
            payload["blocks"] = [_block_text(block) for block in blocks]
        if model is not None:
            payload["model"] = model
        if uarch is not None:
            payload["uarch"] = uarch
        if shards is not _UNSET:
            payload["shards"] = shards
        return self._post(payload)

    def _post(self, payload: Dict[str, object]) -> str:
        """Tag ``payload`` with a fresh correlation id and send it.

        The ``_order`` registration and the socket send happen under one
        ``_send_lock`` hold: were they separate, two racing submitters
        could register in one order and hit the wire in the other, and the
        oldest-outstanding attribution of id-less responses (see
        ``_order``) would cross-wire their replies.
        """
        self.connect()
        request_id = f"c{next(self._ids)}"
        # Serialize before registering the id: a non-JSON-safe payload must
        # raise with no state behind, not leave a phantom entry in _order
        # that id-less responses would be misattributed to.
        line = json.dumps({"id": request_id, **payload}) + "\n"
        with self._send_lock:
            with self._lock:
                if self._connection_error:
                    raise ServiceError(
                        f"connection to {self.host}:{self.port} is gone: "
                        f"{self._connection_error}"
                    )
                # Snapshot under the lock: a concurrent close() swaps _sock
                # to None, and this path must degrade to ServiceError, not
                # crash.
                sock = self._sock
                if sock is None:
                    raise ServiceError("this service client has been closed")
                self._events[request_id] = threading.Event()
                self._order.append(request_id)
            try:
                sock.sendall(line.encode("utf-8"))
            except OSError as error:
                with self._lock:
                    self._events.pop(request_id, None)
                    try:
                        self._order.remove(request_id)
                    except ValueError:
                        pass
                raise ServiceError(
                    f"cannot send to {self.host}:{self.port}: {error}"
                ) from error
        return request_id

    # --------------------------------------------------------------- collect

    def poll(self, request_id: str) -> Optional[dict]:
        """The response for ``request_id`` if it has arrived, else ``None``.

        Non-consuming: :meth:`result` still returns (and releases) it.
        """
        with self._lock:
            if request_id not in self._events and request_id not in self._responses:
                raise ServiceError(f"unknown request id {request_id!r}")
            return self._responses.get(request_id)

    def result(self, request_id: str, timeout: Optional[float] = _UNSET) -> dict:
        """Wait for — and consume — one response object.

        Raises :class:`~repro.utils.errors.ServiceError` when the timeout
        elapses (the response stays collectable) or the connection died
        before the response arrived.
        """
        if timeout is _UNSET:
            timeout = self.timeout
        with self._lock:
            event = self._events.get(request_id)
            if event is None and request_id not in self._responses:
                raise ServiceError(f"unknown request id {request_id!r}")
        if event is not None and not event.wait(timeout):
            raise ServiceError(f"request {request_id!r} did not answer in {timeout}s")
        with self._lock:
            self._events.pop(request_id, None)
            response = self._responses.pop(request_id, None)
        if response is None:
            raise ServiceError(
                f"connection to {self.host}:{self.port} closed before request "
                f"{request_id!r} was answered"
                + (f" ({self._connection_error})" if self._connection_error else "")
            )
        return response

    def explain(
        self,
        blocks: BlockSource,
        *,
        seed: int = 0,
        model: Optional[str] = None,
        uarch: Optional[str] = None,
        shards=_UNSET,
        timeout: Optional[float] = _UNSET,
    ) -> List[dict]:
        """Synchronous convenience: submit, wait, unwrap (raises on failure).

        Returns the ``explanations`` payload — a list of JSON-safe
        explanation dictionaries (see
        :func:`repro.reporting.export.explanation_to_dict`).
        """
        request_id = self.submit(
            blocks, seed=seed, model=model, uarch=uarch, shards=shards
        )
        response = self.result(request_id, timeout=timeout)
        if response.get("status") != "done":
            raise ServiceError(
                f"request {request_id} {response.get('status')}: "
                f"{response.get('error')}"
            )
        return list(response["explanations"])

    def stats(self, *, timeout: Optional[float] = _UNSET) -> dict:
        """The server's accounting snapshot, via the ``stats`` op.

        Returns the decoded ``stats`` payload — request counters, queue
        depth, per-dispatcher counters and session-pool occupancy (see
        :func:`repro.service.protocol.stats_to_dict`).  Answered in this
        connection's submission order like every other request.
        """
        request_id = self._post({"op": "stats"})
        response = self.result(request_id, timeout=timeout)
        if response.get("status") != "done":
            raise ServiceError(
                f"stats request {request_id} {response.get('status')}: "
                f"{response.get('error')}"
            )
        return dict(response["stats"])

    # ---------------------------------------------------------------- reader

    def _read_loop(self) -> None:
        sock = self._sock
        if sock is None:
            return
        buffer = bytearray()
        reason = "server closed the connection"
        while True:
            try:
                chunk = sock.recv(65536)
            except OSError as error:
                if not self._closed:
                    reason = f"socket error: {error}"
                chunk = b""
            if not chunk:
                break
            buffer.extend(chunk)
            while True:
                newline = buffer.find(b"\n")
                if newline < 0:
                    break
                line = bytes(buffer[:newline]).decode("utf-8", errors="replace")
                del buffer[: newline + 1]
                if line.strip():
                    self._route(line)
        self._fail_waiters(reason)

    def _route(self, line: str) -> None:
        try:
            response = json.loads(line)
        except json.JSONDecodeError:
            response = {"id": None, "status": "failed", "error": f"undecodable: {line}"}
        if not isinstance(response, dict):
            response = {"id": None, "status": "failed", "error": f"non-object: {line}"}
        request_id = response.get("id")
        with self._lock:
            event = self._events.get(request_id) if request_id else None
            if event is None and self._order:
                # Per-connection responses arrive in submission order, so an
                # uncorrelatable one answers the oldest outstanding request.
                request_id = self._order[0]
                event = self._events.get(request_id)
            if event is None:
                self.unmatched.append(response)
                return
            try:
                self._order.remove(request_id)
            except ValueError:
                pass
            self._responses[request_id] = response
            event.set()

    def _fail_waiters(self, reason: str) -> None:
        """Wake every outstanding result() with the connection's epitaph."""
        with self._lock:
            self._connection_error = reason
            events = list(self._events.values())
        for event in events:
            event.set()
