"""The warm-session explanation service.

:class:`ExplanationService` turns the explanation library into a servable
system: requests go into an admission-controlled scheduler, a fleet of
dispatcher threads executes them against long-lived, per-model
:class:`~repro.runtime.session.ExplanationSession` instances (warm query
cache, resident execution backend, LRU population records) leased from a
shared :class:`~repro.runtime.pool.SessionPool`, and clients collect results
with submit/poll/result semantics or the synchronous
:meth:`ExplanationService.explain` convenience wrapper.

Design decisions worth knowing:

* **Key-affine dispatchers.**  The :class:`~repro.service.scheduler.Scheduler`
  routes every request by its session key — ``(model, microarch)`` — to one
  home dispatcher and never runs two requests of one key concurrently, so N
  concurrent clients sharing a warm session get exactly the seeded results
  serial submission would produce while *distinct* keys execute in parallel.
  ``dispatchers=1`` (the default) is the original single-threaded service
  and stays the behavioral oracle in tests.  Parallelism also lives *inside*
  a request: each explanation fans its query batches out through the
  session's backend, and fleet requests additionally shard their block list
  across backend workers (see ``ExplanationSession.explain_many``).
* **Bounded queue.**  ``max_queue`` caps buffered requests across the whole
  dispatcher fleet; a blocking :meth:`submit` applies backpressure to
  producers, a non-blocking one raises
  :class:`~repro.utils.errors.QueueFullError` so callers can shed load
  instead of buffering without limit.  Within the bound, queued keys
  round-robin per dispatcher, so one hot model cannot starve the rest.
* **Ownership.**  The service owns its session pool, which owns the
  sessions it builds (and closes them); each session owns the backend it
  resolved (and closes it).  Nothing else closes anything: callers that
  hand the service a ``session_factory`` producing sessions over
  caller-owned backends keep those backends open across :meth:`close`, per
  the session's own ownership rules.

Seeded results are bit-for-bit identical to calling
:class:`~repro.explain.explainer.CometExplainer` directly: single-block
requests run ``session.explain(block, rng=seed)`` and multi-block requests
run ``session.explain_many(blocks, rng=seed)``, both of which are pinned
against the one-shot API by the runtime's parity tests — under any
dispatcher count, which the service's parity tests pin against the
single-dispatcher oracle.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.bb.block import BasicBlock
from repro.cache.store import CacheStats, ResultCache
from repro.explain.config import ExplainerConfig
from repro.explain.explanation import Explanation
from repro.runtime.pool import PoolStats, SessionFactory, SessionPool
from repro.runtime.session import ExplanationSession, SessionStats
from repro.service.batching import (
    FusedEntry,
    FusionCounters,
    FusionStats,
    run_fused_group,
)
from repro.service.scheduler import DispatcherStats, Scheduler
from repro.utils.cancellation import CancelToken
from repro.utils.errors import (
    DeadlineExceededError,
    QueueFullError,
    RequestCancelledError,
    ServiceClosedError,
    ServiceError,
    ServiceTimeoutError,
)

#: Environment override for the default dispatcher count (like
#: ``REPRO_BACKEND`` for backends; CI uses it to run suites multi-dispatch).
DISPATCHERS_ENV_VAR = "REPRO_DISPATCHERS"

#: Environment override turning cross-request continuous batching on by
#: default (``1``/``true``/``on``); CI uses it to run suites fused.
FUSED_ENV_VAR = "REPRO_FUSED"

#: Environment override for the default fused-group size bound.
MAX_FUSED_ENV_VAR = "REPRO_MAX_FUSED"

#: Environment override naming a persistent result-cache store every service
#: opens by default (``repro serve --result-cache`` wins; CI uses it to run
#: whole suites memoized).
RESULT_CACHE_ENV_VAR = "REPRO_RESULT_CACHE"


def default_dispatchers() -> int:
    """The ambient dispatcher count: ``REPRO_DISPATCHERS`` or 1."""
    raw = os.environ.get(DISPATCHERS_ENV_VAR, "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError as error:
        raise ServiceError(
            f"{DISPATCHERS_ENV_VAR} must be a positive integer, got {raw!r}"
        ) from error
    if value < 1:
        raise ServiceError(
            f"{DISPATCHERS_ENV_VAR} must be a positive integer, got {raw!r}"
        )
    return value


def default_continuous_batching() -> bool:
    """The ambient fusion default: ``REPRO_FUSED`` or off."""
    raw = os.environ.get(FUSED_ENV_VAR, "").strip().lower()
    if not raw:
        return False
    if raw in ("1", "true", "yes", "on"):
        return True
    if raw in ("0", "false", "no", "off"):
        return False
    raise ServiceError(f"{FUSED_ENV_VAR} must be a boolean flag, got {raw!r}")


def default_result_cache() -> Optional[str]:
    """The ambient result-cache path: ``REPRO_RESULT_CACHE`` or none."""
    raw = os.environ.get(RESULT_CACHE_ENV_VAR, "").strip()
    return raw or None


def default_max_fused() -> int:
    """The ambient fused-group size bound: ``REPRO_MAX_FUSED`` or 8."""
    raw = os.environ.get(MAX_FUSED_ENV_VAR, "").strip()
    if not raw:
        return 8
    try:
        value = int(raw)
    except ValueError as error:
        raise ServiceError(
            f"{MAX_FUSED_ENV_VAR} must be a positive integer, got {raw!r}"
        ) from error
    if value < 1:
        raise ServiceError(
            f"{MAX_FUSED_ENV_VAR} must be a positive integer, got {raw!r}"
        )
    return value


class RequestStatus(Enum):
    """Lifecycle of one request inside the service."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def finished(self) -> bool:
        return self in (RequestStatus.DONE, RequestStatus.FAILED, RequestStatus.CANCELLED)


@dataclass(frozen=True)
class ExplanationRequest:
    """One unit of service work: explain some blocks under one seed.

    ``model``/``uarch`` default to the service's configured model; ``shards``
    is forwarded to ``explain_many`` for multi-block requests (``"auto"``,
    the default, = one shard per backend worker — sequential on the serial
    backend; ``None`` = force the sequential loop).
    """

    blocks: Tuple[BasicBlock, ...]
    seed: int = 0
    model: Optional[str] = None
    uarch: Optional[str] = None
    shards: Union[int, str, None] = "auto"
    #: Server-side budget in seconds, counted from admission.  A request
    #: whose deadline lapses while queued fails fast without touching a
    #: session; one that lapses mid-run stops cooperatively at the next
    #: KL-LUCB round boundary.  ``None`` inherits the service default.
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ServiceError("an explanation request needs at least one block")
        if self.deadline is not None and self.deadline <= 0:
            raise ServiceError(
                f"request deadline must be positive seconds, got {self.deadline!r}"
            )


@dataclass(frozen=True)
class ServiceResult:
    """The outcome of one request (inspect ``status`` before ``explanations``)."""

    request_id: str
    status: RequestStatus
    explanations: Tuple[Explanation, ...]
    error: Optional[str]
    model: str
    uarch: str
    seconds: float

    @property
    def ok(self) -> bool:
        return self.status is RequestStatus.DONE


@dataclass(frozen=True)
class ServiceStats:
    """Service-level accounting, snapshot via :meth:`ExplanationService.stats`."""

    submitted: int
    served: int
    failed: int
    cancelled: int
    queue_depth: int
    sessions: Tuple[Tuple[str, str], ...]
    session_stats: Dict[Tuple[str, str], SessionStats] = field(default_factory=dict)
    dispatchers: int = 1
    in_flight: int = 0
    dispatcher_stats: Tuple[DispatcherStats, ...] = ()
    pool: Optional[PoolStats] = None
    #: Failure/resilience accounting: server-side deadline expirations
    #: (queued fail-fast and mid-run alike), plus worker-supervision and
    #: checkpoint counters aggregated over every warm session.
    deadline_expired: int = 0
    worker_restarts: int = 0
    worker_retries: int = 0
    worker_fallbacks: int = 0
    checkpoint_skips: int = 0
    #: Continuous-batching counters (fused ticks, occupancy, shared hits);
    #: always present, with ``enabled=False`` when the service runs unfused.
    fusion: Optional[FusionStats] = None
    #: Requests absorbed into an already-running same-key fused group
    #: instead of waiting for their own scheduler claim.
    absorbed: int = 0
    #: Result-cache counters (per-tier hits/misses/evictions/bytes) for the
    #: service-wide memoization store; ``None`` when memoization is off.
    result_cache: Optional[CacheStats] = None

    def describe(self) -> str:
        resilience = ""
        if self.deadline_expired or self.worker_restarts:
            resilience = (
                f", {self.deadline_expired} deadlines expired, "
                f"{self.worker_restarts} worker restarts"
            )
        fused = ""
        if self.fusion is not None and self.fusion.enabled:
            fused = f", {self.fusion.describe()}, {self.absorbed} absorbed"
        memo = ""
        if self.result_cache is not None:
            memo = f", {self.result_cache.describe()}"
        return (
            f"{self.served}/{self.submitted} requests served "
            f"({self.failed} failed, {self.cancelled} cancelled), "
            f"{self.queue_depth} queued, "
            f"{len(self.sessions)} warm sessions, "
            f"{self.dispatchers} dispatchers{resilience}{fused}{memo}"
        )


class _Ticket:
    """Mutable per-request state shared between clients and dispatchers."""

    __slots__ = ("request_id", "request", "status", "result", "done", "token")

    def __init__(
        self, request_id: str, request: ExplanationRequest, token: CancelToken
    ) -> None:
        self.request_id = request_id
        self.request = request
        self.status = RequestStatus.QUEUED
        self.result: Optional[ServiceResult] = None
        self.done = threading.Event()
        #: The request's cancel/deadline token, threaded into the session's
        #: KL-LUCB loops while the request runs.
        self.token = token


class ExplanationService:
    """Serve explanation requests from warm, per-model sessions.

    Parameters
    ----------
    model / uarch:
        Defaults applied to requests that do not name a model.
    config:
        Explanation hyperparameters shared by every session the service
        builds (per-request configs would defeat session warm-up).
    backend / workers:
        Execution substrate forwarded to each session (a short name or
        ``None`` for the ``REPRO_BACKEND`` environment default).  Each
        session resolves — and owns — its own backend instance.
    dispatchers:
        How many dispatcher threads serve the queue (``None`` = the
        ``REPRO_DISPATCHERS`` environment default, normally 1).  Requests
        are routed by session key: one key never runs concurrently with
        itself, so any dispatcher count preserves per-request seeded
        results bit-for-bit; more dispatchers let distinct (model, uarch)
        keys execute in parallel.
    max_queue:
        Bound on buffered requests (backpressure surface).
    max_sessions:
        How many per-model sessions stay warm at once; the least recently
        used idle session is closed when the pool overflows.
    default_deadline:
        Server-side deadline (seconds from admission) applied to requests
        that do not carry their own; ``None`` (the default) leaves requests
        unbounded.  A request's explicit ``deadline`` always wins.
    continuous_batching:
        Fuse concurrent same-key requests into shared ``predict_batch``
        ticks (``None`` = the ``REPRO_FUSED`` environment default, normally
        off).  Fused results are bit-for-bit identical to the unfused
        oracle — each request keeps its own seeded stream and request-scoped
        records — fusion only changes how many requests one warm model
        invocation serves.
    max_fused_requests:
        How many requests one fused tick group may hold at once (``None`` =
        the ``REPRO_MAX_FUSED`` environment default, normally 8).
    result_cache:
        Whole-explanation memoization shared by every session the service
        builds: a :class:`~repro.cache.ResultCache` instance (caller-owned),
        a path to open a disk-backed store at (service-owned, closed with
        the service), ``True`` for a service-owned memory-only cache,
        ``False`` to disable regardless of the environment, or ``None`` for
        the ``REPRO_RESULT_CACHE`` environment default (a path, or off).
        Hits serve the stored explanation verbatim — bit-for-bit what the
        computation would produce, since the service already runs every
        request history-free — and retire without a search (under fusion,
        without consuming a KL-LUCB round).
    session_factory:
        Override how sessions are built (tests inject toy models here).  The
        default routes through :func:`repro.models.registry.build_session`.

    Use as a context manager (or call :meth:`close`) so queued requests are
    drained and pooled workers released deterministically::

        with ExplanationService(model="uica", backend="process", dispatchers=4) as service:
            explanations = service.explain([block], seed=0)
    """

    def __init__(
        self,
        *,
        model: str = "crude",
        uarch: str = "hsw",
        config: Optional[ExplainerConfig] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        dispatchers: Optional[int] = None,
        max_queue: int = 64,
        max_sessions: int = 4,
        cache_entries: int = 100_000,
        session_factory: Optional[SessionFactory] = None,
        default_deadline: Optional[float] = None,
        continuous_batching: Optional[bool] = None,
        max_fused_requests: Optional[int] = None,
        result_cache: Union[ResultCache, str, Path, bool, None] = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if default_deadline is not None and default_deadline <= 0:
            raise ValueError("default_deadline must be positive seconds")
        if dispatchers is None:
            dispatchers = default_dispatchers()
        if dispatchers < 1:
            raise ValueError("dispatchers must be >= 1")
        if continuous_batching is None:
            continuous_batching = default_continuous_batching()
        if max_fused_requests is None:
            max_fused_requests = default_max_fused()
        if max_fused_requests < 1:
            raise ValueError("max_fused_requests must be >= 1")
        self.default_model = model
        self.default_uarch = uarch
        self.default_deadline = default_deadline
        self.config = config or ExplainerConfig()
        self.dispatchers = dispatchers
        self.continuous_batching = continuous_batching
        self.max_fused_requests = max_fused_requests
        self._fusion_counters = FusionCounters()
        self.max_queue = max_queue
        self.max_sessions = max_sessions
        self._backend = backend
        self._workers = workers
        self._cache_entries = cache_entries
        # Result-cache resolution: an explicit False always disables (the
        # parity matrix needs a "disabled" arm even when CI exports
        # REPRO_RESULT_CACHE); None defers to the environment.
        if result_cache is None:
            result_cache = default_result_cache()
        self._owns_result_cache = False
        if result_cache is False or result_cache is None:
            self._result_cache: Optional[ResultCache] = None
        elif result_cache is True:
            self._result_cache = ResultCache()
            self._owns_result_cache = True
        elif isinstance(result_cache, ResultCache):
            self._result_cache = result_cache
        else:
            self._result_cache = ResultCache(result_cache)
            self._owns_result_cache = True
        self._pool = SessionPool(
            session_factory or self._build_session, max_sessions=max_sessions
        )
        self._tickets: Dict[str, _Ticket] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._scheduler: Optional[Scheduler] = None
        self._closed = False
        self._close_done = threading.Event()
        self._submitted = 0
        self._served = 0
        self._failed = 0
        self._cancelled = 0
        self._deadline_expired = 0

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "ExplanationService":
        """Start the dispatcher fleet.  Idempotent; implied by ``submit``."""
        with self._lock:
            # The closed check must live under the lock: a start racing
            # close() past an unlocked check would build a fresh dispatcher
            # fleet on a service whose close already ran — and leak it.
            if self._closed:
                raise ServiceClosedError("this explanation service has been closed")
            if self._scheduler is None:
                self._scheduler = Scheduler(
                    self._execute,
                    dispatchers=self.dispatchers,
                    max_queue=self.max_queue,
                )
        return self

    @property
    def closed(self) -> bool:
        return self._closed

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted request has finished.

        Returns ``False`` if ``timeout`` (seconds) elapsed first.  Draining a
        service that never started (or is already idle) returns immediately.
        """
        scheduler = self._scheduler
        if scheduler is None:
            return True
        return scheduler.drain(timeout)

    def close(self, *, drain: bool = True) -> None:
        """Shut the service down.  Idempotent (and safe to race).

        With ``drain`` (the default) all queued requests finish first; with
        ``drain=False`` queued-but-unstarted requests are cancelled (their
        tickets resolve with :attr:`RequestStatus.CANCELLED`) and only
        in-flight requests complete.  Either way every warm session — and
        therefore every backend a session owns — is closed before returning,
        so no pooled workers outlive the service.  A concurrent second
        ``close`` simply waits until the first one has finished.
        """
        with self._lock:
            first = not self._closed
            self._closed = True  # reject new submissions immediately
        if not first:
            self._close_done.wait()
            return
        try:
            scheduler = self._scheduler
            if scheduler is not None:
                if drain:
                    scheduler.drain()
                # Dispatchers still drain anything that raced past the
                # closed check above; with cancel=True the backlog comes
                # back to us to resolve instead.
                for ticket in scheduler.close(cancel=not drain):
                    self._cancel_ticket(ticket)
            self._pool.close()
            if self._owns_result_cache and self._result_cache is not None:
                self._result_cache.close()
        finally:
            self._close_done.set()

    def _cancel_ticket(self, ticket: "_Ticket") -> None:
        self._resolve(
            ticket,
            ServiceResult(
                request_id=ticket.request_id,
                status=RequestStatus.CANCELLED,
                explanations=(),
                error="service closed before the request ran",
                model=ticket.request.model or self.default_model,
                uarch=ticket.request.uarch or self.default_uarch,
                seconds=0.0,
            ),
        )

    def __enter__(self) -> "ExplanationService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------------- submit

    def _request_key(self, request: ExplanationRequest) -> Tuple[str, str]:
        """The session key a request routes (and serializes) on."""
        return (
            request.model or self.default_model,
            request.uarch or self.default_uarch,
        )

    def submit(
        self,
        request: Union[ExplanationRequest, BasicBlock, Sequence[BasicBlock]],
        *,
        seed: int = 0,
        model: Optional[str] = None,
        uarch: Optional[str] = None,
        shards: Union[int, str, None] = "auto",
        deadline: Optional[float] = None,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> str:
        """Enqueue a request and return its id (collect via :meth:`result`).

        Accepts a prepared :class:`ExplanationRequest`, a single
        :class:`~repro.bb.block.BasicBlock`, or a sequence of blocks (the
        keyword arguments then describe the request).  When the bounded queue
        is full, a blocking submit waits (``timeout`` seconds, or forever)
        and a non-blocking one raises
        :class:`~repro.utils.errors.QueueFullError` immediately.  Submitting
        to a closed service raises
        :class:`~repro.utils.errors.ServiceClosedError`.

        ``deadline`` is the request's server-side budget in seconds, counted
        from admission (``None`` inherits the service default): a request
        still queued when it lapses fails fast without touching a session,
        and a running one stops cooperatively at the next KL-LUCB round.
        """
        if self._closed:
            raise ServiceClosedError("this explanation service has been closed")
        if not isinstance(request, ExplanationRequest):
            blocks = (request,) if isinstance(request, BasicBlock) else tuple(request)
            request = ExplanationRequest(
                blocks=blocks,
                seed=seed,
                model=model,
                uarch=uarch,
                shards=shards,
                deadline=deadline,
            )
        self.start()
        scheduler = self._scheduler
        assert scheduler is not None
        request_id = f"req-{next(self._ids)}"
        budget = request.deadline if request.deadline is not None else self.default_deadline
        ticket = _Ticket(
            request_id, request, CancelToken.with_timeout(budget, name=request_id)
        )
        with self._lock:
            self._tickets[ticket.request_id] = ticket
            self._submitted += 1
        try:
            scheduler.submit(
                self._request_key(request), ticket, block=block, timeout=timeout
            )
        except QueueFullError:
            with self._lock:
                del self._tickets[ticket.request_id]
                self._submitted -= 1
            # The scheduler's message already distinguishes "full right
            # now" from "stayed full for your whole timeout"; re-raise it.
            raise
        except ServiceClosedError:
            # close() won the race between our closed-check and the
            # scheduler put; the ticket never entered the queue.
            with self._lock:
                del self._tickets[ticket.request_id]
                self._submitted -= 1
            raise ServiceClosedError(
                "this explanation service has been closed"
            ) from None
        return ticket.request_id

    def poll(self, request_id: str) -> RequestStatus:
        """The current status of a submitted request."""
        ticket = self._tickets.get(request_id)
        if ticket is None:
            raise ServiceError(f"unknown request id {request_id!r}")
        return ticket.status

    def result(self, request_id: str, timeout: Optional[float] = None) -> ServiceResult:
        """Wait for — and consume — one request's result.

        The ticket is released once collected, so a long-running service does
        not accumulate per-request state; asking twice raises.  A ``timeout``
        (seconds) elapsing raises :class:`~repro.utils.errors.ServiceError`
        and leaves the ticket collectable.
        """
        ticket = self._tickets.get(request_id)
        if ticket is None:
            raise ServiceError(f"unknown request id {request_id!r}")
        if not ticket.done.wait(timeout):
            raise ServiceTimeoutError(
                f"request {request_id!r} did not finish in {timeout}s"
            )
        with self._lock:
            self._tickets.pop(request_id, None)
        assert ticket.result is not None
        return ticket.result

    def cancel(self, request_id: str) -> bool:
        """Cancel a submitted request (idempotent; unknown ids raise).

        Returns ``True`` when the cancellation can still take effect — the
        request was withdrawn from the queue (its ticket resolves
        :attr:`RequestStatus.CANCELLED` immediately) or is running and will
        stop at its next KL-LUCB round boundary — and ``False`` when the
        request had already finished.  Either way the ticket stays
        collectable via :meth:`result`, and the request's dispatcher and
        session key are freed for the next request the moment it stops.
        """
        ticket = self._tickets.get(request_id)
        if ticket is None:
            raise ServiceError(f"unknown request id {request_id!r}")
        if ticket.done.is_set():
            return False
        # Setting the token first closes the claim race: a dispatcher that
        # dequeues the ticket after a failed withdraw still sees the token
        # at its first round boundary.
        ticket.token.cancel("cancelled by client")
        scheduler = self._scheduler
        if scheduler is not None and scheduler.withdraw(
            self._request_key(ticket.request), ticket
        ):
            self._resolve(
                ticket,
                ServiceResult(
                    request_id=ticket.request_id,
                    status=RequestStatus.CANCELLED,
                    explanations=(),
                    error="request cancelled before it ran",
                    model=ticket.request.model or self.default_model,
                    uarch=ticket.request.uarch or self.default_uarch,
                    seconds=0.0,
                ),
            )
        return True

    def explain(
        self,
        blocks: Union[BasicBlock, Sequence[BasicBlock]],
        *,
        seed: int = 0,
        model: Optional[str] = None,
        uarch: Optional[str] = None,
        shards: Union[int, str, None] = "auto",
        timeout: Optional[float] = None,
    ) -> List[Explanation]:
        """Synchronous convenience: submit, wait, unwrap (raises on failure)."""
        request_id = self.submit(
            blocks, seed=seed, model=model, uarch=uarch, shards=shards, timeout=timeout
        )
        result = self.result(request_id, timeout=timeout)
        if not result.ok:
            raise ServiceError(
                f"request {request_id} {result.status.value}: {result.error}"
            )
        return list(result.explanations)

    # ------------------------------------------------------------ dispatcher

    def _execute(self, ticket: _Ticket) -> None:
        """Run one claimed request on a dispatcher thread.

        The scheduler guarantees per-key mutual exclusion, so this request
        has its session to itself for the duration; the pool lease pins the
        session against a concurrent eviction triggered by another key.
        With continuous batching on, the claimed request seeds a fused tick
        group that also serves — and keeps absorbing — other outstanding
        requests of the same key (see :mod:`repro.service.batching`).
        """
        if self.continuous_batching:
            self._execute_fused(ticket)
        else:
            self._execute_single(ticket)

    def _execute_single(self, ticket: _Ticket) -> None:
        """The unfused execution path — the service's behavioral oracle."""
        with self._lock:
            # Skip tickets already resolved (cancelled by a racing close or
            # a queue withdraw); claiming RUNNING under the lock means a
            # concurrent _resolve cannot interleave between the check and
            # the status write.
            if ticket.done.is_set():
                return
            ticket.status = RequestStatus.RUNNING
        request = ticket.request
        model_name, uarch = self._request_key(request)
        start = time.perf_counter()
        deadline_expired = False
        try:
            # Fail fast before leasing anything: a request whose deadline
            # lapsed (or that was cancelled) while queued must not spend a
            # warm session computing an answer nobody will read.
            ticket.token.check()
            with self._pool.leased(model_name, uarch) as session:
                # Request isolation: population records are stateful (a
                # pre-filled record changes how a later search consumes its
                # stream), so each request starts from a clean record space —
                # results are then independent of what the warm session served
                # before, and of concurrent-submission arrival order.  The
                # query cache and backend stay warm; they are bit-safe.
                session.reset_population_records()
                if len(request.blocks) == 1:
                    # Matches CometExplainer.explain(block, rng=seed) exactly:
                    # the seed drives the search directly, no stream spawning.
                    explanations = (
                        session.explain(
                            request.blocks[0], rng=request.seed, cancel=ticket.token
                        ),
                    )
                else:
                    explanations = tuple(
                        session.explain_many(
                            request.blocks,
                            rng=request.seed,
                            shards=request.shards,
                            cancel=ticket.token,
                        )
                    )
            result = ServiceResult(
                request_id=ticket.request_id,
                status=RequestStatus.DONE,
                explanations=explanations,
                error=None,
                model=model_name,
                uarch=uarch,
                seconds=time.perf_counter() - start,
            )
        except RequestCancelledError as error:
            result = ServiceResult(
                request_id=ticket.request_id,
                status=RequestStatus.CANCELLED,
                explanations=(),
                error=f"{type(error).__name__}: {error}",
                model=model_name,
                uarch=uarch,
                seconds=time.perf_counter() - start,
            )
        except Exception as error:  # noqa: BLE001 - reported to the client
            deadline_expired = isinstance(error, DeadlineExceededError)
            result = ServiceResult(
                request_id=ticket.request_id,
                status=RequestStatus.FAILED,
                explanations=(),
                error=f"{type(error).__name__}: {error}",
                model=model_name,
                uarch=uarch,
                seconds=time.perf_counter() - start,
            )
        self._resolve(ticket, result, deadline_expired=deadline_expired)

    def _execute_fused(self, primary: _Ticket) -> None:
        """Run one claimed request as the seed of a fused tick group.

        Still one key, one thread: the scheduler's mutual exclusion holds,
        but between fused ticks the group absorbs newly queued same-key
        requests (``claim_extra``) so concurrent users share each warm
        cost-model invocation.  Every member request resolves through its
        own callbacks — results, cancellation and deadline expiry stay
        per-request — and absorbed members release their scheduler
        accounting (``extra_done``) exactly once when they retire.
        """
        key = self._request_key(primary.request)
        model_name, uarch = key
        scheduler = self._scheduler
        assert scheduler is not None
        members: List[Tuple[_Ticket, bool]] = []

        def entry_for(ticket: _Ticket, absorbed: bool) -> FusedEntry:
            start = time.perf_counter()

            def settle(result: ServiceResult, *, deadline_expired: bool = False) -> None:
                self._resolve(ticket, result, deadline_expired=deadline_expired)
                if absorbed:
                    scheduler.extra_done(key)

            def finish(explanations: List[Explanation]) -> None:
                settle(
                    ServiceResult(
                        request_id=ticket.request_id,
                        status=RequestStatus.DONE,
                        explanations=tuple(explanations),
                        error=None,
                        model=model_name,
                        uarch=uarch,
                        seconds=time.perf_counter() - start,
                    )
                )

            def fail(error: BaseException) -> None:
                cancelled = isinstance(error, RequestCancelledError)
                settle(
                    ServiceResult(
                        request_id=ticket.request_id,
                        status=(
                            RequestStatus.CANCELLED
                            if cancelled
                            else RequestStatus.FAILED
                        ),
                        explanations=(),
                        error=f"{type(error).__name__}: {error}",
                        model=model_name,
                        uarch=uarch,
                        seconds=time.perf_counter() - start,
                    ),
                    deadline_expired=isinstance(error, DeadlineExceededError),
                )

            return FusedEntry(
                blocks=ticket.request.blocks,
                seed=ticket.request.seed,
                token=ticket.token,
                finish=finish,
                fail=fail,
            )

        def claim(ticket: _Ticket, absorbed: bool) -> Optional[FusedEntry]:
            """Mark a ticket RUNNING, or drop one a racing cancel resolved."""
            with self._lock:
                if ticket.done.is_set():
                    if absorbed:
                        scheduler.extra_done(key)
                    return None
                ticket.status = RequestStatus.RUNNING
            members.append((ticket, absorbed))
            return entry_for(ticket, absorbed)

        def absorb(limit: int) -> List[FusedEntry]:
            entries = []
            for ticket in scheduler.claim_extra(key, limit):
                entry = claim(ticket, absorbed=True)
                if entry is not None:
                    entries.append(entry)
            return entries

        primary_entry = claim(primary, absorbed=False)
        if primary_entry is None:
            return
        try:
            with self._pool.leased(model_name, uarch) as session:
                # Same request isolation as the unfused path: the batcher
                # scopes population records per request, and the session's
                # cross-request record cache stays out of fused results.
                session.reset_population_records()
                run_fused_group(
                    session,
                    [primary_entry],
                    absorb=absorb,
                    max_fused_requests=self.max_fused_requests,
                    counters=self._fusion_counters,
                )
        except Exception as error:  # noqa: BLE001 - group-level failure
            # Leasing or group machinery failed before the batcher could
            # retire everyone: resolve whichever members are still open.
            deadline_expired = isinstance(error, DeadlineExceededError)
            for ticket, absorbed in members:
                if ticket.done.is_set():
                    continue
                self._resolve(
                    ticket,
                    ServiceResult(
                        request_id=ticket.request_id,
                        status=RequestStatus.FAILED,
                        explanations=(),
                        error=f"{type(error).__name__}: {error}",
                        model=model_name,
                        uarch=uarch,
                        seconds=0.0,
                    ),
                    deadline_expired=deadline_expired,
                )
                if absorbed:
                    scheduler.extra_done(key)

    def _resolve(
        self,
        ticket: _Ticket,
        result: ServiceResult,
        *,
        deadline_expired: bool = False,
    ) -> None:
        """Publish a ticket's outcome exactly once (later resolvers lose)."""
        with self._lock:
            if ticket.done.is_set():
                return
            ticket.result = result
            ticket.status = result.status
            if result.status is RequestStatus.DONE:
                self._served += 1
            elif result.status is RequestStatus.FAILED:
                self._failed += 1
                if deadline_expired:
                    self._deadline_expired += 1
            else:
                self._cancelled += 1
            ticket.done.set()

    # -------------------------------------------------------------- sessions

    @property
    def pool(self) -> SessionPool:
        """The service's session pool (shared with library callers)."""
        return self._pool

    @property
    def result_cache(self) -> Optional[ResultCache]:
        """The service-wide memoization store (``None`` when disabled)."""
        return self._result_cache

    def _build_session(self, model_name: str, uarch: str) -> ExplanationSession:
        from repro.models.registry import build_session

        return build_session(
            model_name,
            uarch,
            config=self.config,
            backend=self._backend,
            workers=self._workers,
            cache_entries=self._cache_entries,
            # One shared store across every (model, uarch) session: the
            # fingerprint carries the model identity, so entries never
            # collide and all sessions benefit from each other's warmth.
            result_cache=self._result_cache,
        )

    # ----------------------------------------------------------------- stats

    def stats(self) -> ServiceStats:
        """Accounting snapshot: request counters, scheduler queue/flight
        depth, per-dispatcher counters, pool occupancy and per-session stats."""
        with self._lock:
            submitted, served = self._submitted, self._served
            failed, cancelled = self._failed, self._cancelled
            deadline_expired = self._deadline_expired
            scheduler = self._scheduler
        scheduler_stats = scheduler.stats() if scheduler is not None else None
        keys, pool_stats, session_stats = self._pool.snapshot()
        return ServiceStats(
            submitted=submitted,
            served=served,
            failed=failed,
            cancelled=cancelled,
            queue_depth=scheduler_stats.queue_depth if scheduler_stats else 0,
            sessions=keys,
            session_stats=session_stats,
            dispatchers=self.dispatchers,
            in_flight=scheduler_stats.in_flight if scheduler_stats else 0,
            dispatcher_stats=(
                scheduler_stats.dispatcher_stats if scheduler_stats else ()
            ),
            pool=pool_stats,
            deadline_expired=deadline_expired,
            worker_restarts=sum(s.worker_restarts for s in session_stats.values()),
            worker_retries=sum(s.worker_retries for s in session_stats.values()),
            worker_fallbacks=sum(s.worker_fallbacks for s in session_stats.values()),
            checkpoint_skips=sum(s.checkpoint_skips for s in session_stats.values()),
            fusion=self._fusion_counters.snapshot(
                enabled=self.continuous_batching,
                max_fused_requests=self.max_fused_requests,
            ),
            absorbed=scheduler_stats.absorbed if scheduler_stats else 0,
            result_cache=(
                self._result_cache.stats()
                if self._result_cache is not None and not self._result_cache.closed
                else None
            ),
        )
