"""The warm-session explanation service.

:class:`ExplanationService` turns the explanation library into a servable
system: requests go into a bounded queue, one dispatcher thread executes them
against long-lived, per-model :class:`~repro.runtime.session.ExplanationSession`
instances (warm query cache, resident execution backend, LRU population
records), and clients collect results with submit/poll/result semantics or
the synchronous :meth:`ExplanationService.explain` convenience wrapper.

Design decisions worth knowing:

* **One dispatcher thread.**  Requests execute strictly in submission order
  on one thread, so N concurrent clients sharing a warm session get exactly
  the seeded results serial submission would produce — the service never
  trades determinism for concurrency.  Parallelism lives *inside* a request:
  each explanation fans its query batches out through the session's backend,
  and fleet requests additionally shard their block list across backend
  workers (see ``ExplanationSession.explain_many``).
* **Bounded queue.**  ``max_queue`` caps buffered requests; a blocking
  :meth:`submit` applies backpressure to producers, a non-blocking one
  raises :class:`~repro.utils.errors.QueueFullError` so callers can shed
  load instead of buffering without limit.
* **Ownership.**  The service owns the sessions it builds (and closes them);
  each session owns the backend it resolved (and closes it).  Nothing else
  closes anything: callers that hand the service a ``session_factory``
  producing sessions over caller-owned backends keep those backends open
  across :meth:`close`, per the session's own ownership rules.

Seeded results are bit-for-bit identical to calling
:class:`~repro.explain.explainer.CometExplainer` directly: single-block
requests run ``session.explain(block, rng=seed)`` and multi-block requests
run ``session.explain_many(blocks, rng=seed)``, both of which are pinned
against the one-shot API by the runtime's parity tests.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.bb.block import BasicBlock
from repro.explain.config import ExplainerConfig
from repro.explain.explanation import Explanation
from repro.runtime.session import ExplanationSession, SessionStats
from repro.utils.errors import QueueFullError, ServiceClosedError, ServiceError

#: Builds the session serving one (model, microarch) pair.
SessionFactory = Callable[[str, str], ExplanationSession]


class RequestStatus(Enum):
    """Lifecycle of one request inside the service."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def finished(self) -> bool:
        return self in (RequestStatus.DONE, RequestStatus.FAILED, RequestStatus.CANCELLED)


@dataclass(frozen=True)
class ExplanationRequest:
    """One unit of service work: explain some blocks under one seed.

    ``model``/``uarch`` default to the service's configured model; ``shards``
    is forwarded to ``explain_many`` for multi-block requests (``"auto"``,
    the default, = one shard per backend worker — sequential on the serial
    backend; ``None`` = force the sequential loop).
    """

    blocks: Tuple[BasicBlock, ...]
    seed: int = 0
    model: Optional[str] = None
    uarch: Optional[str] = None
    shards: Union[int, str, None] = "auto"

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ServiceError("an explanation request needs at least one block")


@dataclass(frozen=True)
class ServiceResult:
    """The outcome of one request (inspect ``status`` before ``explanations``)."""

    request_id: str
    status: RequestStatus
    explanations: Tuple[Explanation, ...]
    error: Optional[str]
    model: str
    uarch: str
    seconds: float

    @property
    def ok(self) -> bool:
        return self.status is RequestStatus.DONE


@dataclass(frozen=True)
class ServiceStats:
    """Service-level accounting, snapshot via :meth:`ExplanationService.stats`."""

    submitted: int
    served: int
    failed: int
    cancelled: int
    queue_depth: int
    sessions: Tuple[Tuple[str, str], ...]
    session_stats: Dict[Tuple[str, str], SessionStats] = field(default_factory=dict)

    def describe(self) -> str:
        return (
            f"{self.served}/{self.submitted} requests served "
            f"({self.failed} failed, {self.cancelled} cancelled), "
            f"{self.queue_depth} queued, "
            f"{len(self.sessions)} warm sessions"
        )


class _Ticket:
    """Mutable per-request state shared between clients and the dispatcher."""

    __slots__ = ("request_id", "request", "status", "result", "done")

    def __init__(self, request_id: str, request: ExplanationRequest) -> None:
        self.request_id = request_id
        self.request = request
        self.status = RequestStatus.QUEUED
        self.result: Optional[ServiceResult] = None
        self.done = threading.Event()


#: Queue sentinel telling the dispatcher to exit.
_SHUTDOWN = object()


class ExplanationService:
    """Serve explanation requests from warm, per-model sessions.

    Parameters
    ----------
    model / uarch:
        Defaults applied to requests that do not name a model.
    config:
        Explanation hyperparameters shared by every session the service
        builds (per-request configs would defeat session warm-up).
    backend / workers:
        Execution substrate forwarded to each session (a short name or
        ``None`` for the ``REPRO_BACKEND`` environment default).  Each
        session resolves — and owns — its own backend instance.
    max_queue:
        Bound on buffered requests (backpressure surface).
    max_sessions:
        How many per-model sessions stay warm at once; the least recently
        used session is closed when the pool overflows.
    session_factory:
        Override how sessions are built (tests inject toy models here).  The
        default routes through :func:`repro.models.registry.build_session`.

    Use as a context manager (or call :meth:`close`) so queued requests are
    drained and pooled workers released deterministically::

        with ExplanationService(model="uica", backend="process") as service:
            explanations = service.explain([block], seed=0)
    """

    def __init__(
        self,
        *,
        model: str = "crude",
        uarch: str = "hsw",
        config: Optional[ExplainerConfig] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        max_queue: int = 64,
        max_sessions: int = 4,
        cache_entries: int = 100_000,
        session_factory: Optional[SessionFactory] = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.default_model = model
        self.default_uarch = uarch
        self.config = config or ExplainerConfig()
        self.max_sessions = max_sessions
        self._backend = backend
        self._workers = workers
        self._cache_entries = cache_entries
        self._session_factory = session_factory or self._build_session
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_queue)
        self._tickets: Dict[str, _Ticket] = {}
        self._sessions: "OrderedDict[Tuple[str, str], ExplanationSession]" = OrderedDict()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._dispatcher: Optional[threading.Thread] = None
        self._closed = False
        self._submitted = 0
        self._served = 0
        self._failed = 0
        self._cancelled = 0

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "ExplanationService":
        """Start the dispatcher thread.  Idempotent; implied by ``submit``."""
        if self._closed:
            raise ServiceClosedError("this explanation service has been closed")
        with self._lock:
            if self._dispatcher is None:
                self._dispatcher = threading.Thread(
                    target=self._run, name="repro-service-dispatcher", daemon=True
                )
                self._dispatcher.start()
        return self

    @property
    def closed(self) -> bool:
        return self._closed

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted request has finished.

        Returns ``False`` if ``timeout`` (seconds) elapsed first.  Draining a
        service that never started (or is already idle) returns immediately.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._queue.all_tasks_done:
            while self._queue.unfinished_tasks:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._queue.all_tasks_done.wait(remaining)
        return True

    def close(self, *, drain: bool = True) -> None:
        """Shut the service down.  Idempotent.

        With ``drain`` (the default) all queued requests finish first; with
        ``drain=False`` queued-but-unstarted requests are cancelled (their
        tickets resolve with :attr:`RequestStatus.CANCELLED`) and only the
        in-flight request completes.  Either way every warm session — and
        therefore every backend a session owns — is closed before returning,
        so no pooled workers outlive the service.
        """
        if self._closed:
            return
        self._closed = True  # reject new submissions immediately
        dispatcher = self._dispatcher
        if dispatcher is not None:
            if drain:
                self.drain()
            else:
                self._cancel_queued()
            self._queue.put(_SHUTDOWN)
            dispatcher.join()
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()

    def _cancel_ticket(self, ticket: "_Ticket") -> None:
        self._resolve(
            ticket,
            ServiceResult(
                request_id=ticket.request_id,
                status=RequestStatus.CANCELLED,
                explanations=(),
                error="service closed before the request ran",
                model=ticket.request.model or self.default_model,
                uarch=ticket.request.uarch or self.default_uarch,
                seconds=0.0,
            ),
        )

    def _cancel_queued(self) -> None:
        """Drop queued tickets, resolving each as cancelled."""
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is not _SHUTDOWN:
                self._cancel_ticket(item)
            self._queue.task_done()

    def __enter__(self) -> "ExplanationService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------------- submit

    def submit(
        self,
        request: Union[ExplanationRequest, BasicBlock, Sequence[BasicBlock]],
        *,
        seed: int = 0,
        model: Optional[str] = None,
        uarch: Optional[str] = None,
        shards: Union[int, str, None] = "auto",
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> str:
        """Enqueue a request and return its id (collect via :meth:`result`).

        Accepts a prepared :class:`ExplanationRequest`, a single
        :class:`~repro.bb.block.BasicBlock`, or a sequence of blocks (the
        keyword arguments then describe the request).  When the bounded queue
        is full, a blocking submit waits (``timeout`` seconds, or forever)
        and a non-blocking one raises
        :class:`~repro.utils.errors.QueueFullError` immediately.
        """
        if self._closed:
            raise ServiceClosedError("this explanation service has been closed")
        if not isinstance(request, ExplanationRequest):
            blocks = (request,) if isinstance(request, BasicBlock) else tuple(request)
            request = ExplanationRequest(
                blocks=blocks, seed=seed, model=model, uarch=uarch, shards=shards
            )
        self.start()
        ticket = _Ticket(f"req-{next(self._ids)}", request)
        with self._lock:
            self._tickets[ticket.request_id] = ticket
            self._submitted += 1
        try:
            self._queue.put(ticket, block=block, timeout=timeout)
        except queue.Full:
            with self._lock:
                del self._tickets[ticket.request_id]
                self._submitted -= 1
            raise QueueFullError(
                f"service queue is full ({self._queue.maxsize} requests); "
                f"retry, raise max_queue, or use a blocking submit"
            ) from None
        if self._closed:
            # close() may have drained the queue and stopped the dispatcher
            # between our closed-check and the put; nothing will service the
            # ticket, so resolve it as cancelled here (idempotent — if the
            # dispatcher did pick it up, _resolve is a no-op for the loser
            # and the dispatcher skips already-resolved tickets).
            self._cancel_ticket(ticket)
        return ticket.request_id

    def poll(self, request_id: str) -> RequestStatus:
        """The current status of a submitted request."""
        ticket = self._tickets.get(request_id)
        if ticket is None:
            raise ServiceError(f"unknown request id {request_id!r}")
        return ticket.status

    def result(self, request_id: str, timeout: Optional[float] = None) -> ServiceResult:
        """Wait for — and consume — one request's result.

        The ticket is released once collected, so a long-running service does
        not accumulate per-request state; asking twice raises.  A ``timeout``
        (seconds) elapsing raises :class:`~repro.utils.errors.ServiceError`
        and leaves the ticket collectable.
        """
        ticket = self._tickets.get(request_id)
        if ticket is None:
            raise ServiceError(f"unknown request id {request_id!r}")
        if not ticket.done.wait(timeout):
            raise ServiceError(f"request {request_id!r} did not finish in {timeout}s")
        with self._lock:
            self._tickets.pop(request_id, None)
        assert ticket.result is not None
        return ticket.result

    def explain(
        self,
        blocks: Union[BasicBlock, Sequence[BasicBlock]],
        *,
        seed: int = 0,
        model: Optional[str] = None,
        uarch: Optional[str] = None,
        shards: Union[int, str, None] = "auto",
        timeout: Optional[float] = None,
    ) -> List[Explanation]:
        """Synchronous convenience: submit, wait, unwrap (raises on failure)."""
        request_id = self.submit(
            blocks, seed=seed, model=model, uarch=uarch, shards=shards, timeout=timeout
        )
        result = self.result(request_id, timeout=timeout)
        if not result.ok:
            raise ServiceError(
                f"request {request_id} {result.status.value}: {result.error}"
            )
        return list(result.explanations)

    # ------------------------------------------------------------ dispatcher

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                self._queue.task_done()
                return
            ticket: _Ticket = item
            with self._lock:
                # Skip tickets already resolved (cancelled by a racing
                # submit-after-close); claiming RUNNING under the lock means
                # a concurrent _resolve cannot interleave between the check
                # and the status write.
                if ticket.done.is_set():
                    self._queue.task_done()
                    continue
                ticket.status = RequestStatus.RUNNING
            request = ticket.request
            model_name = request.model or self.default_model
            uarch = request.uarch or self.default_uarch
            start = time.perf_counter()
            try:
                session = self._session_for(model_name, uarch)
                # Request isolation: population records are stateful (a
                # pre-filled record changes how a later search consumes its
                # stream), so each request starts from a clean record space —
                # results are then independent of what the warm session served
                # before, and of concurrent-submission arrival order.  The
                # query cache and backend stay warm; they are bit-safe.
                session.reset_population_records()
                if len(request.blocks) == 1:
                    # Matches CometExplainer.explain(block, rng=seed) exactly:
                    # the seed drives the search directly, no stream spawning.
                    explanations = (session.explain(request.blocks[0], rng=request.seed),)
                else:
                    explanations = tuple(
                        session.explain_many(
                            request.blocks, rng=request.seed, shards=request.shards
                        )
                    )
                result = ServiceResult(
                    request_id=ticket.request_id,
                    status=RequestStatus.DONE,
                    explanations=explanations,
                    error=None,
                    model=model_name,
                    uarch=uarch,
                    seconds=time.perf_counter() - start,
                )
            except Exception as error:  # noqa: BLE001 - reported to the client
                result = ServiceResult(
                    request_id=ticket.request_id,
                    status=RequestStatus.FAILED,
                    explanations=(),
                    error=f"{type(error).__name__}: {error}",
                    model=model_name,
                    uarch=uarch,
                    seconds=time.perf_counter() - start,
                )
            self._resolve(ticket, result)
            self._queue.task_done()

    def _resolve(self, ticket: _Ticket, result: ServiceResult) -> None:
        """Publish a ticket's outcome exactly once (later resolvers lose)."""
        with self._lock:
            if ticket.done.is_set():
                return
            ticket.result = result
            ticket.status = result.status
            if result.status is RequestStatus.DONE:
                self._served += 1
            elif result.status is RequestStatus.FAILED:
                self._failed += 1
            else:
                self._cancelled += 1
            ticket.done.set()

    # -------------------------------------------------------------- sessions

    def _build_session(self, model_name: str, uarch: str) -> ExplanationSession:
        from repro.models.registry import build_session

        return build_session(
            model_name,
            uarch,
            config=self.config,
            backend=self._backend,
            workers=self._workers,
            cache_entries=self._cache_entries,
        )

    def _session_for(self, model_name: str, uarch: str) -> ExplanationSession:
        """The warm session for one (model, uarch), LRU-pooled.

        Only the dispatcher thread calls this; the lock protects the pool
        against concurrent ``stats()``/``close()`` readers.
        """
        key = (model_name, uarch)
        evicted: List[ExplanationSession] = []
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                self._sessions.move_to_end(key)
        if session is None:
            session = self._session_factory(model_name, uarch)
            with self._lock:
                self._sessions[key] = session
                while len(self._sessions) > self.max_sessions:
                    evicted.append(self._sessions.popitem(last=False)[1])
        for old in evicted:
            old.close()
        return session

    # ----------------------------------------------------------------- stats

    def stats(self) -> ServiceStats:
        """Accounting snapshot (request counters plus per-session stats)."""
        with self._lock:
            sessions = dict(self._sessions)
            submitted, served = self._submitted, self._served
            failed, cancelled = self._failed, self._cancelled
        return ServiceStats(
            submitted=submitted,
            served=served,
            failed=failed,
            cancelled=cancelled,
            queue_depth=self._queue.qsize(),
            sessions=tuple(sessions.keys()),
            session_stats={
                key: session.stats()
                for key, session in sessions.items()
                if not session.closed
            },
        )
