"""Consistent-hash routing across a fleet of explanation-service nodes.

One :class:`~repro.service.transport.SocketServer` is one process: its warm
sessions, its query LRU and its result cache all live behind one port.  To
scale past one process without giving up warmth, requests must keep landing
on the node that already holds their state.  This module generalises the
scheduler's CRC-32 dispatcher affinity (:func:`~repro.service.scheduler.stable_key_hash`)
from "key → dispatcher index" to "key → fleet node", with the classic
consistent-hashing property the modulo form lacks: **removing a node remaps
only the keys that node owned** — every other key keeps its placement, so a
fleet resize invalidates one node's warmth, not the whole fleet's.

Three layers:

* :class:`HashRing` — the placement structure.  Each node contributes
  ``replicas`` points on a 32-bit ring (CRC-32 of ``"node#i"``); a key is
  owned by the first point clockwise of its own hash.  Pure data, no I/O.
* :class:`Router` — a client-side front over N ``host:port`` nodes.  It
  mirrors the :class:`~repro.service.client.ServiceClient` surface
  (``submit``/``poll``/``result``/``explain``/``cancel``/``stats``) but
  routes every request by its :func:`routing_key` — ``(model, uarch,
  block keys)``, the same identity the result-cache fingerprint hashes —
  and aggregates ``stats`` fleet-wide (counters summed, result-cache tiers
  merged, per-node snapshots preserved).
* :func:`route_stream` — the JSON-lines pump behind ``repro route``:
  :func:`~repro.service.protocol.serve_stream` semantics (submission-order
  responses, in-band failures, ``stats``/``cancel`` ops) over a routed
  fleet instead of one in-process service.

Determinism contract: a node answers a routed request exactly as it would
answer the same request submitted directly — routing chooses *where*, never
*what*.  The router parity tests pin an N-node fleet byte-identical to a
single node (modulo ``num_queries``, which counts uncached inner-model
work and is warmth-dependent by design).
"""

from __future__ import annotations

import bisect
import itertools
import json
import threading
from collections import deque
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    TextIO,
    Tuple,
    Union,
)

from repro.bb.block import BasicBlock
from repro.service.client import BlockSource, RetryPolicy, ServiceClient
from repro.service.protocol import ServiceOp, request_from_line
from repro.service.scheduler import stable_key_hash
from repro.utils.errors import ReproError, ServiceError

_UNSET = object()

__all__ = [
    "HashRing",
    "Router",
    "aggregate_node_stats",
    "parse_nodes",
    "route_stream",
    "routing_key",
]


def parse_nodes(spec: Union[str, Sequence[str]]) -> List[str]:
    """Normalise a fleet spec into a list of ``"host:port"`` node names.

    Accepts the CLI form (one comma-separated string) or any sequence of
    node strings; validates that every node carries a numeric port.
    """
    if isinstance(spec, str):
        parts = [part.strip() for part in spec.split(",")]
    else:
        parts = [str(part).strip() for part in spec]
    nodes = [part for part in parts if part]
    if not nodes:
        raise ServiceError("no nodes given; expected host:port[,host:port...]")
    for node in nodes:
        parse_node(node)
    if len(set(nodes)) != len(nodes):
        raise ServiceError(f"duplicate nodes in {nodes!r}")
    return nodes


def parse_node(node: str) -> Tuple[str, int]:
    """Split one ``"host:port"`` node name into ``(host, port)``."""
    host, separator, port_text = node.rpartition(":")
    if not separator or not host:
        raise ServiceError(f"node {node!r} is not of the form host:port")
    try:
        port = int(port_text)
    except ValueError as error:
        raise ServiceError(f"node {node!r} has a non-numeric port") from error
    if not 0 < port < 65536:
        raise ServiceError(f"node {node!r} has an out-of-range port")
    return host, port


def routing_key(
    blocks: BlockSource,
    model: Optional[str] = None,
    uarch: Optional[str] = None,
) -> Tuple[str, str, Tuple[str, ...]]:
    """The placement identity of one request.

    Built from the same components the result-cache fingerprint hashes —
    the model, the micro-architecture and the blocks' canonical keys — so
    repeats of a request (the warm-hit case) land on the node whose caches
    already hold it.  The seed is deliberately *excluded*: different seeds
    of one block still share the node's query LRU.  Inline text and parsed
    :class:`~repro.bb.block.BasicBlock` objects produce the same key
    (text is parsed to its canonical block first).
    """
    if isinstance(blocks, (str, BasicBlock)):
        sources: Sequence[Union[str, BasicBlock]] = [blocks]
    else:
        sources = list(blocks)
    keys = tuple(
        repr(
            (
                block
                if isinstance(block, BasicBlock)
                else BasicBlock.from_text(str(block).replace(";", "\n"))
            ).key()
        )
        for block in sources
    )
    return (str(model or ""), str(uarch or ""), keys)


class HashRing:
    """A consistent-hash ring of named nodes.

    Each node contributes ``replicas`` points — ``stable_key_hash("node#i")``
    — on the 32-bit ring; :meth:`node_for` walks clockwise from the key's
    own hash to the first point.  Replicas smooth the load split; the ring
    property (only a removed node's keys remap) holds at any replica count.
    Ties between points of different nodes break on the node name, so the
    ring is fully deterministic.
    """

    def __init__(self, nodes: Iterable[str] = (), *, replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._nodes: List[str] = []
        #: Sorted ``(point, node)`` pairs; bisect finds the successor point.
        self._points: List[Tuple[int, str]] = []
        for node in nodes:
            self.add(node)

    # ---------------------------------------------------------------- members

    @property
    def nodes(self) -> Tuple[str, ...]:
        """The member nodes, in insertion order."""
        return tuple(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Add a node (``replicas`` ring points).  Duplicate adds raise."""
        name = str(node)
        if name in self._nodes:
            raise ValueError(f"node {name!r} is already on the ring")
        self._nodes.append(name)
        for replica in range(self.replicas):
            point = stable_key_hash(f"{name}#{replica}")
            bisect.insort(self._points, (point, name))

    def remove(self, node: str) -> None:
        """Remove a node.  Only keys it owned remap — to their next point
        clockwise — which is the whole reason this is a ring and not a
        modulo."""
        name = str(node)
        if name not in self._nodes:
            raise ValueError(f"node {name!r} is not on the ring")
        self._nodes.remove(name)
        self._points = [pair for pair in self._points if pair[1] != name]

    # ----------------------------------------------------------------- lookup

    def node_for(self, key: object) -> str:
        """The node that owns ``key``."""
        if not self._points:
            raise ServiceError("the hash ring has no nodes")
        point = stable_key_hash(key)
        # Successor point clockwise; (point,) sorts before any (point, node)
        # pair, so a key that lands exactly on a point maps to that point.
        index = bisect.bisect_left(self._points, (point,))
        if index == len(self._points):
            index = 0
        return self._points[index][1]


def _sum_numeric(payloads: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Key-union sum of numeric fields across dicts (non-numeric skipped)."""
    total: Dict[str, object] = {}
    for payload in payloads:
        for key, value in payload.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            total[key] = total.get(key, 0) + value
    return total


def _merge_result_cache(
    payloads: Sequence[Optional[Dict[str, object]]]
) -> Optional[Dict[str, object]]:
    present = [payload for payload in payloads if payload is not None]
    if not present:
        return None
    memory = _sum_numeric([dict(p.get("memory") or {}) for p in present])
    disks = [dict(p["disk"]) for p in present if p.get("disk") is not None]  # type: ignore[arg-type]
    hits = sum(int(p.get("hits") or 0) for p in present)
    lookups = sum(int(p.get("lookups") or 0) for p in present)
    return {
        "path": sorted({str(p["path"]) for p in present if p.get("path")}),
        "hits": hits,
        "lookups": lookups,
        "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
        "memory": memory,
        "disk": _sum_numeric(disks) if disks else None,
    }


def _merge_fusion(
    payloads: Sequence[Optional[Dict[str, object]]]
) -> Optional[Dict[str, object]]:
    present = [payload for payload in payloads if payload is not None]
    if not present:
        return None
    merged = _sum_numeric(present)
    merged["enabled"] = any(bool(p.get("enabled")) for p in present)
    merged["max_fused_requests"] = max(
        int(p.get("max_fused_requests") or 0) for p in present
    )
    ticks = sum(int(p.get("ticks") or 0) for p in present)
    weighted = sum(
        float(p.get("mean_occupancy") or 0.0) * int(p.get("ticks") or 0)
        for p in present
    )
    merged["mean_occupancy"] = round(weighted / ticks, 4) if ticks else 0.0
    merged["occupancy"] = _sum_numeric(
        [dict(p.get("occupancy") or {}) for p in present]
    )
    return merged


def aggregate_node_stats(per_node: Dict[str, dict]) -> Dict[str, object]:
    """Fold per-node ``stats`` payloads into one fleet-wide snapshot.

    Counters (requests, queue depths, resilience, fusion, result-cache
    tiers) sum across the fleet; derived rates (``hit_rate``,
    ``mean_occupancy``) are recomputed from the summed numerators, never
    averaged.  The untouched per-node payloads ride along under
    ``"per_node"`` so nothing is lost to the fold.
    """
    snapshots = [per_node[node] for node in sorted(per_node)]
    aggregated: Dict[str, object] = {
        "nodes": sorted(per_node),
    }
    for field in (
        "submitted",
        "served",
        "failed",
        "cancelled",
        "queue_depth",
        "in_flight",
        "dispatchers",
    ):
        aggregated[field] = sum(int(s.get(field) or 0) for s in snapshots)
    aggregated["resilience"] = _sum_numeric(
        [dict(s.get("resilience") or {}) for s in snapshots]
    )
    aggregated["fusion"] = _merge_fusion([s.get("fusion") for s in snapshots])
    aggregated["result_cache"] = _merge_result_cache(
        [s.get("result_cache") for s in snapshots]
    )
    aggregated["per_node"] = {node: per_node[node] for node in sorted(per_node)}
    return aggregated


class Router:
    """Route requests across a fleet of service nodes by consistent hash.

    Mirrors the :class:`~repro.service.client.ServiceClient` surface, with
    the client's correlation ids replaced by router-level handles (two
    nodes' clients both count ``c1, c2, ...`` — the router must namespace
    them).  Per-node clients are dialled lazily on first use, so building a
    router is free and a node nothing routes to is never contacted.

    Thread-safe the way the underlying client is: submissions serialise on
    the router's lock only long enough to pick a node and register the
    handle; the wire work happens on the node client.
    """

    def __init__(
        self,
        nodes: Union[str, Sequence[str]],
        *,
        replicas: int = 64,
        timeout: Optional[float] = None,
        connect_timeout: float = 10.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.ring = HashRing(parse_nodes(nodes), replicas=replicas)
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.retry = retry
        self._lock = threading.Lock()
        self._clients: Dict[str, ServiceClient] = {}
        self._ids = itertools.count(1)
        #: Router handle → (node, that node's correlation id).
        self._handles: Dict[str, Tuple[str, str]] = {}
        self._closed = False

    # -------------------------------------------------------------- lifecycle

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Close every dialled node client.  Idempotent."""
        with self._lock:
            self._closed = True
            clients, self._clients = list(self._clients.values()), {}
        for client in clients:
            client.close()

    def client_for(self, node: str) -> ServiceClient:
        """The (lazily dialled) client for one node name."""
        with self._lock:
            if self._closed:
                raise ServiceError("this router has been closed")
            client = self._clients.get(node)
            if client is None:
                host, port = parse_node(node)
                client = ServiceClient(
                    host,
                    port,
                    timeout=self.timeout,
                    connect_timeout=self.connect_timeout,
                    retry=self.retry,
                )
                self._clients[node] = client
        return client

    # ---------------------------------------------------------------- routing

    def node_for(
        self,
        blocks: BlockSource,
        *,
        model: Optional[str] = None,
        uarch: Optional[str] = None,
    ) -> str:
        """The node that owns one request's :func:`routing_key`."""
        return self.ring.node_for(routing_key(blocks, model, uarch))

    def node_of(self, handle: str) -> str:
        """The node an outstanding handle was routed to."""
        with self._lock:
            entry = self._handles.get(handle)
        if entry is None:
            raise ServiceError(f"unknown request handle {handle!r}")
        return entry[0]

    def _resolve(self, handle: str) -> Tuple[ServiceClient, str]:
        with self._lock:
            entry = self._handles.get(handle)
        if entry is None:
            raise ServiceError(f"unknown request handle {handle!r}")
        node, request_id = entry
        return self.client_for(node), request_id

    # ------------------------------------------------------- client mirroring

    def submit(
        self,
        blocks: BlockSource,
        *,
        seed: int = 0,
        model: Optional[str] = None,
        uarch: Optional[str] = None,
        shards=_UNSET,
        deadline: Optional[float] = None,
    ) -> str:
        """Route one request to its owning node; returns a router handle."""
        node = self.node_for(blocks, model=model, uarch=uarch)
        client = self.client_for(node)
        kwargs: Dict[str, object] = {}
        if shards is not _UNSET:
            kwargs["shards"] = shards
        request_id = client.submit(
            blocks, seed=seed, model=model, uarch=uarch, deadline=deadline, **kwargs
        )
        handle = f"r{next(self._ids)}"
        with self._lock:
            self._handles[handle] = (node, request_id)
        return handle

    def poll(self, handle: str) -> Optional[dict]:
        """The response for ``handle`` if it has arrived, else ``None``."""
        client, request_id = self._resolve(handle)
        return client.poll(request_id)

    def result(self, handle: str, timeout: Optional[float] = _UNSET) -> dict:
        """Wait for — and consume — one routed response object."""
        client, request_id = self._resolve(handle)
        kwargs = {} if timeout is _UNSET else {"timeout": timeout}
        response = client.result(request_id, **kwargs)
        with self._lock:
            self._handles.pop(handle, None)
        return response

    def explain(
        self,
        blocks: BlockSource,
        *,
        seed: int = 0,
        model: Optional[str] = None,
        uarch: Optional[str] = None,
        shards=_UNSET,
        deadline: Optional[float] = None,
        timeout: Optional[float] = _UNSET,
    ) -> List[dict]:
        """Synchronous convenience: route, submit, wait, unwrap."""
        node = self.node_for(blocks, model=model, uarch=uarch)
        client = self.client_for(node)
        kwargs: Dict[str, object] = {}
        if shards is not _UNSET:
            kwargs["shards"] = shards
        if timeout is not _UNSET:
            kwargs["timeout"] = timeout
        return client.explain(
            blocks, seed=seed, model=model, uarch=uarch, deadline=deadline, **kwargs
        )

    def cancel(self, handle: str, *, timeout: Optional[float] = _UNSET) -> bool:
        """Cancel an outstanding routed request on its owning node."""
        client, request_id = self._resolve(handle)
        kwargs = {} if timeout is _UNSET else {"timeout": timeout}
        return client.cancel(request_id, **kwargs)

    def stats(self, *, timeout: Optional[float] = _UNSET) -> Dict[str, object]:
        """One fleet-wide snapshot: every ring node's ``stats`` op, folded
        by :func:`aggregate_node_stats` (per-node payloads preserved under
        ``"per_node"``)."""
        kwargs = {} if timeout is _UNSET else {"timeout": timeout}
        per_node = {
            node: self.client_for(node).stats(**kwargs) for node in self.ring.nodes
        }
        return aggregate_node_stats(per_node)


def _error_line(client_id: Optional[str], message: str) -> str:
    return json.dumps({"id": client_id, "status": "failed", "error": message})


def route_stream(
    router: Router,
    lines: Iterable[str],
    out: TextIO,
    max_pending: int = 1024,
) -> int:
    """Pump a JSON-lines request stream through a routed fleet.

    :func:`~repro.service.protocol.serve_stream` semantics over
    :class:`Router`: requests are routed and submitted as they are read,
    responses are written in submission order (each stamped with the node
    that served it), undecodable lines and refused submissions fail in-band
    without stopping the stream, a ``stats`` op answers with the
    fleet-aggregated snapshot when its turn comes, and a ``cancel`` op acts
    on the owning node the moment its line is read.  Returns the count of
    explanation requests answered.
    """
    #: Submission-ordered backlog: ``("req", client id, handle)`` waits on a
    #: node, ``("stats", client id, None)`` snapshots the fleet at its turn,
    #: ``("done", client id, payload)`` was answered at read time.
    pending: "deque[Tuple[str, Optional[str], object]]" = deque()
    live_requests: Dict[str, str] = {}
    served = 0

    def flush(block: bool) -> int:
        count = 0
        while pending:
            kind, client_id, extra = pending[0]
            if kind == "stats":
                payload: Dict[str, object] = {
                    "id": client_id,
                    "status": "done",
                    "op": "stats",
                    "stats": router.stats(),
                }
            elif kind == "done":
                payload = extra  # type: ignore[assignment]
            else:
                handle = str(extra)
                if not block and router.poll(handle) is None:
                    break
                node = router.node_of(handle)
                try:
                    payload = dict(router.result(handle))
                except ServiceError as error:
                    payload = {"status": "failed", "error": str(error)}
                # The node's own correlation id is router-internal; the
                # stream's contract echoes the *caller's* id.
                payload["id"] = client_id
                payload["node"] = node
                if client_id is not None and live_requests.get(client_id) == handle:
                    del live_requests[client_id]
                count += 1
            out.write(json.dumps(payload) + "\n")
            out.flush()
            pending.popleft()
        return count

    for line in lines:
        if not line.strip():
            continue
        try:
            client_id, request = request_from_line(line)
        except ReproError as error:
            out.write(
                _error_line(getattr(error, "client_id", None), str(error)) + "\n"
            )
            out.flush()
            continue
        if isinstance(request, ServiceOp):
            if request.op == "cancel":
                assert request.target is not None
                handle = live_requests.get(request.target)
                if handle is None:
                    payload = {
                        "id": client_id,
                        "status": "failed",
                        "op": "cancel",
                        "target": request.target,
                        "error": (
                            f"unknown cancel target {request.target!r} "
                            f"(never submitted, or already answered)"
                        ),
                    }
                else:
                    try:
                        effective = router.cancel(handle)
                    except ServiceError:
                        effective = False
                    payload = {
                        "id": client_id,
                        "status": "done",
                        "op": "cancel",
                        "target": request.target,
                        "cancelled": bool(effective),
                    }
                pending.append(("done", client_id, payload))
            else:
                pending.append(("stats", client_id, None))
            served += flush(block=False)
            if len(pending) >= max_pending:
                served += flush(block=True)
            continue
        try:
            handle = router.submit(
                [block.text for block in request.blocks],
                seed=request.seed,
                model=request.model,
                uarch=request.uarch,
                shards=request.shards,
                deadline=request.deadline,
            )
        except ReproError as error:
            out.write(_error_line(client_id, str(error)) + "\n")
            out.flush()
            continue
        if client_id is not None:
            live_requests[client_id] = handle
        pending.append(("req", client_id, handle))
        served += flush(block=False)
        if len(pending) >= max_pending:
            served += flush(block=True)
    served += flush(block=True)
    return served
