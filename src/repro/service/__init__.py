"""The explanation service: a warm, request/response serving layer.

The library's one-shot API pays the full setup cost — model construction,
cache warm-up, backend pool spin-up, background populations — on every call.
This package keeps all of that *resident*: an
:class:`~repro.service.core.ExplanationService` owns one long-lived
:class:`~repro.runtime.session.ExplanationSession` per requested model
(pooled LRU through the model registry) and serves explanation requests
against it with submit/poll/result semantics, a bounded request queue for
backpressure, and a graceful shutdown that drains in-flight work before the
backends are released.

The JSON-lines wire protocol (:mod:`repro.service.protocol`) is spoken over
two transports: stdin/stdout (``repro serve``, the default) and TCP
(:class:`~repro.service.transport.SocketServer` behind ``repro serve
--port``, driven by :class:`~repro.service.client.ServiceClient`).

See ``docs/architecture.md`` ("The service layer") for the ownership rules.
"""

from repro.service.client import ServiceClient
from repro.service.core import (
    ExplanationRequest,
    ExplanationService,
    RequestStatus,
    ServiceResult,
    ServiceStats,
)
from repro.service.protocol import (
    request_from_dict,
    request_from_line,
    result_to_dict,
    serve_stream,
)
from repro.service.transport import SocketServer

__all__ = [
    "ExplanationRequest",
    "ExplanationService",
    "RequestStatus",
    "ServiceClient",
    "ServiceResult",
    "ServiceStats",
    "SocketServer",
    "request_from_dict",
    "request_from_line",
    "result_to_dict",
    "serve_stream",
]
