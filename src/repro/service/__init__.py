"""The explanation service: a warm, request/response serving layer.

The library's one-shot API pays the full setup cost — model construction,
cache warm-up, backend pool spin-up, background populations — on every call.
This package keeps all of that *resident*: an
:class:`~repro.service.core.ExplanationService` leases long-lived
:class:`~repro.runtime.session.ExplanationSession` instances from a shared
:class:`~repro.runtime.pool.SessionPool` (LRU per (model, microarch)) and
serves explanation requests against them with submit/poll/result semantics,
a bounded request queue for backpressure, and a graceful shutdown that
drains in-flight work before the backends are released.

Requests are executed by the :class:`~repro.service.scheduler.Scheduler` —
N dispatcher threads with deterministic per-key affinity routing, work
stealing, per-key fairness and admission control — so distinct (model,
microarch) keys execute concurrently while every single request still
produces the bit-for-bit seeded result of serial submission.

The JSON-lines wire protocol (:mod:`repro.service.protocol`) is spoken over
two transports: stdin/stdout (``repro serve``, the default) and TCP
(:class:`~repro.service.transport.SocketServer` behind ``repro serve
--port``, driven by :class:`~repro.service.client.ServiceClient`).  Besides
explanation requests it answers a ``stats`` op (queue depth, pool occupancy,
per-dispatcher and failure counters), surfaced client-side as
:meth:`ServiceClient.stats`, and a ``cancel`` op
(:meth:`ServiceClient.cancel`) that cancels a still-outstanding request the
moment the server reads it.  Requests may carry a server-side ``deadline``
(seconds from admission), enforced while queued and cooperatively between
KL-LUCB rounds while running; the failure surface is typed —
:class:`~repro.utils.errors.ServiceTimeoutError` (the *caller's* wait
expired; the result stays collectable),
:class:`~repro.utils.errors.RequestCancelledError` and
:class:`~repro.utils.errors.DeadlineExceededError`.

See ``docs/architecture.md`` ("The service layer" and "Failure modes &
recovery") for the ownership and recovery rules.
"""

from repro.runtime.pool import PoolStats, SessionPool
from repro.service.batching import FusionCounters, FusionStats, run_fused_group
from repro.service.client import RetryPolicy, ServiceClient
from repro.service.core import (
    DISPATCHERS_ENV_VAR,
    FUSED_ENV_VAR,
    MAX_FUSED_ENV_VAR,
    RESULT_CACHE_ENV_VAR,
    ExplanationRequest,
    ExplanationService,
    RequestStatus,
    ServiceResult,
    ServiceStats,
    default_continuous_batching,
    default_dispatchers,
    default_max_fused,
    default_result_cache,
)
from repro.service.protocol import (
    ServiceOp,
    cancel_to_dict,
    request_from_dict,
    request_from_line,
    result_to_dict,
    serve_stream,
    stats_to_dict,
)
from repro.service.router import (
    HashRing,
    Router,
    aggregate_node_stats,
    parse_nodes,
    route_stream,
    routing_key,
)
from repro.service.scheduler import (
    DispatcherStats,
    Scheduler,
    SchedulerStats,
    stable_key_hash,
)
from repro.service.transport import SocketServer
from repro.utils.cancellation import CancelToken
from repro.utils.errors import (
    DeadlineExceededError,
    QueueFullError,
    RequestCancelledError,
    ServiceClosedError,
    ServiceError,
    ServiceTimeoutError,
)

__all__ = [
    "CancelToken",
    "DISPATCHERS_ENV_VAR",
    "DeadlineExceededError",
    "DispatcherStats",
    "ExplanationRequest",
    "ExplanationService",
    "FUSED_ENV_VAR",
    "FusionCounters",
    "FusionStats",
    "HashRing",
    "MAX_FUSED_ENV_VAR",
    "PoolStats",
    "QueueFullError",
    "RESULT_CACHE_ENV_VAR",
    "RequestCancelledError",
    "RequestStatus",
    "RetryPolicy",
    "Router",
    "Scheduler",
    "SchedulerStats",
    "ServiceClient",
    "ServiceClosedError",
    "ServiceError",
    "ServiceOp",
    "ServiceResult",
    "ServiceStats",
    "ServiceTimeoutError",
    "SessionPool",
    "SocketServer",
    "aggregate_node_stats",
    "cancel_to_dict",
    "default_continuous_batching",
    "default_dispatchers",
    "default_max_fused",
    "default_result_cache",
    "parse_nodes",
    "request_from_dict",
    "request_from_line",
    "result_to_dict",
    "route_stream",
    "routing_key",
    "run_fused_group",
    "serve_stream",
    "stable_key_hash",
    "stats_to_dict",
]
