"""Ranking cost-model candidates by error and explanation granularity."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bb.block import BasicBlock
from repro.explain.config import ExplainerConfig
from repro.models.base import CostModel
from repro.selection.criteria import ModelScore, score_model
from repro.utils.rng import RandomSource
from repro.utils.tables import render_table


@dataclass(frozen=True)
class SelectionConfig:
    """Knobs of the selection rule.

    Attributes
    ----------
    mape_tolerance:
        Two models whose MAPEs differ by at most this many percentage points
        are treated as "similar performing"; within such a group the model
        with the larger share of fine-grained explanations ranks first.
    explainer:
        COMET configuration used when scoring candidates.
    seed:
        Random source for the explanation runs (one independent stream per
        block, shared across candidates so the comparison is paired).
    """

    mape_tolerance: float = 3.0
    explainer: ExplainerConfig = ExplainerConfig()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mape_tolerance < 0.0:
            raise ValueError("mape_tolerance must be non-negative")


@dataclass
class SelectionReport:
    """Ranked candidates plus the rationale for the chosen winner."""

    ranking: List[ModelScore]
    rationale: str
    mape_tolerance: float

    @property
    def best(self) -> ModelScore:
        """The selected model's score."""
        return self.ranking[0]

    @property
    def best_name(self) -> str:
        return self.best.model_name

    def score_for(self, model_name: str) -> ModelScore:
        """Score of a specific candidate (raises ``KeyError`` if unknown)."""
        for score in self.ranking:
            if score.model_name == model_name:
                return score
        raise KeyError(model_name)

    def render(self) -> str:
        """Text table of the ranking plus the rationale line."""
        table = render_table(
            [
                "Model",
                "MAPE (%)",
                "% fine-grained expl.",
                "% expl. with η",
                "Av. precision",
                "Av. coverage",
            ],
            [score.as_cells() for score in self.ranking],
            title="Model selection report",
            precision=2,
        )
        return f"{table}\n\nSelected: {self.best_name}\n{self.rationale}"


class ModelSelector:
    """Select among cost-model candidates using COMET explanations.

    The primary criterion is held-out MAPE; the paper's insight (Section 6.3
    and Section 7) is applied as a tie-breaker: among candidates whose MAPE is
    within ``mape_tolerance`` of the best, prefer the one whose explanations
    rely most on fine-grained features.
    """

    def __init__(
        self,
        blocks: Sequence[BasicBlock],
        targets: Sequence[float],
        config: Optional[SelectionConfig] = None,
    ) -> None:
        if len(blocks) != len(targets):
            raise ValueError("blocks and targets must have the same length")
        if len(blocks) == 0:
            raise ValueError("the selection block set may not be empty")
        self.blocks = list(blocks)
        self.targets = [float(t) for t in targets]
        self.config = config or SelectionConfig()

    # ---------------------------------------------------------------- scoring

    def score(self, model: CostModel) -> ModelScore:
        """Score one candidate over the selection block set."""
        return score_model(
            model,
            self.blocks,
            self.targets,
            config=self.config.explainer,
            seed=self.config.seed,
        )

    def score_all(self, models: Mapping[str, CostModel]) -> Dict[str, ModelScore]:
        """Score every candidate, keyed by the caller's candidate names."""
        scores: Dict[str, ModelScore] = {}
        for name, model in models.items():
            score = self.score(model)
            # Keep the caller's key as the reported name so two instances of
            # the same model class (e.g. two Ithemal seeds) stay distinct.
            scores[name] = ModelScore(
                model_name=name,
                mape=score.mape,
                granularity=score.granularity,
                mean_precision=score.mean_precision,
                mean_coverage=score.mean_coverage,
                blocks_evaluated=score.blocks_evaluated,
            )
        return scores

    # ---------------------------------------------------------------- ranking

    def rank(self, models: Mapping[str, CostModel]) -> SelectionReport:
        """Rank the candidates and explain the choice."""
        if not models:
            raise ValueError("need at least one candidate model to rank")
        scores = list(self.score_all(models).values())
        best_mape = min(score.mape for score in scores)
        tolerance = self.config.mape_tolerance

        def sort_key(score: ModelScore) -> Tuple[int, float, float]:
            within = 0 if score.mape <= best_mape + tolerance else 1
            # Within the near-tie group, finer-grained explanations first,
            # then lower error; outside it, lower error only.
            return (within, -score.granularity.pct_fine_grained, score.mape)

        ranking = sorted(scores, key=sort_key)
        rationale = self._rationale(ranking, best_mape)
        return SelectionReport(
            ranking=ranking, rationale=rationale, mape_tolerance=tolerance
        )

    def _rationale(self, ranking: Sequence[ModelScore], best_mape: float) -> str:
        best = ranking[0]
        tolerance = self.config.mape_tolerance
        contenders = [
            score for score in ranking if score.mape <= best_mape + tolerance
        ]
        if len(contenders) <= 1:
            return (
                f"{best.model_name} has the lowest MAPE "
                f"({best.mape:.2f}%) and no other candidate is within "
                f"{tolerance:.1f} percentage points."
            )
        return (
            f"{len(contenders)} candidates are within {tolerance:.1f} MAPE points of "
            f"the best ({best_mape:.2f}%); {best.model_name} is selected because "
            f"{best.granularity.pct_fine_grained:.1f}% of its explanations rely on "
            f"fine-grained block features (instructions or data dependencies), the "
            f"highest share in the group."
        )
