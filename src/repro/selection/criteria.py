"""Scoring criteria for explanation-based model selection."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.bb.block import BasicBlock
from repro.bb.features import FeatureKind
from repro.eval.metrics import feature_kind_percentages, mean_absolute_percentage_error
from repro.eval.precision_coverage import explain_blocks
from repro.explain.config import ExplainerConfig
from repro.explain.explanation import Explanation
from repro.models.base import CostModel
from repro.utils.rng import RandomSource


@dataclass(frozen=True)
class GranularityProfile:
    """Composition of a model's explanations over a block set (Section 6.3).

    All values are percentages of explanations containing at least one
    feature of the corresponding kind; an explanation can contribute to
    several categories, so the values need not sum to 100.
    """

    pct_num_instructions: float
    pct_instructions: float
    pct_dependencies: float
    pct_fine_grained: float
    pct_coarse_only: float

    @classmethod
    def of(cls, explanations: Sequence[Explanation]) -> "GranularityProfile":
        """Profile of a list of explanations."""
        percentages = feature_kind_percentages(explanations)
        if explanations:
            fine = 100.0 * sum(1 for e in explanations if e.is_fine_grained) / len(explanations)
            coarse_only = 100.0 * sum(
                1
                for e in explanations
                if e.contains_kind(FeatureKind.NUM_INSTRUCTIONS) and not e.is_fine_grained
            ) / len(explanations)
        else:
            fine = float("nan")
            coarse_only = float("nan")
        return cls(
            pct_num_instructions=percentages[FeatureKind.NUM_INSTRUCTIONS.value],
            pct_instructions=percentages[FeatureKind.INSTRUCTION.value],
            pct_dependencies=percentages[FeatureKind.DEPENDENCY.value],
            pct_fine_grained=fine,
            pct_coarse_only=coarse_only,
        )


@dataclass(frozen=True)
class ModelScore:
    """Everything the selector knows about one candidate model."""

    model_name: str
    mape: float
    granularity: GranularityProfile
    mean_precision: float
    mean_coverage: float
    blocks_evaluated: int

    def as_cells(self) -> List[object]:
        """Row cells for the selection report table."""
        return [
            self.model_name,
            self.mape,
            self.granularity.pct_fine_grained,
            self.granularity.pct_num_instructions,
            self.mean_precision,
            self.mean_coverage,
        ]


def score_model(
    model: CostModel,
    blocks: Sequence[BasicBlock],
    targets: Sequence[float],
    *,
    config: Optional[ExplainerConfig] = None,
    seed: RandomSource = 0,
) -> ModelScore:
    """Score ``model`` on error and explanation granularity.

    ``targets`` are the measured (oracle) throughputs of ``blocks``; the MAPE
    against them is the accuracy criterion, and the COMET explanations of the
    model's predictions over the same blocks give the granularity criterion.
    """
    if len(blocks) != len(targets):
        raise ValueError("blocks and targets must have the same length")
    if len(blocks) == 0:
        raise ValueError("cannot score a model over an empty block set")
    config = config or ExplainerConfig()
    predictions = [model.predict(block) for block in blocks]
    error = mean_absolute_percentage_error(predictions, targets)
    explanations = explain_blocks(model, blocks, config, seed)
    precisions = [e.precision for e in explanations]
    coverages = [e.coverage for e in explanations]
    return ModelScore(
        model_name=model.name,
        mape=error,
        granularity=GranularityProfile.of(explanations),
        mean_precision=sum(precisions) / len(precisions),
        mean_coverage=sum(coverages) / len(coverages),
        blocks_evaluated=len(blocks),
    )
