"""Explanation-based cost-model selection (paper Section 7).

The paper's discussion notes that "COMET's explanations can be used to select
a model from a collection of similar performing neural models": when two
models reach comparable held-out error, the one whose explanations rely on
finer-grained block features (specific instructions and data dependencies
rather than the instruction count) is, by the paper's Section 6.3 finding,
the one more likely to generalise.  This subpackage implements that
selection rule:

* :func:`score_model` measures one candidate's MAPE and the composition of
  its COMET explanations over a labelled block set,
* :class:`ModelSelector` ranks a collection of candidates, breaking
  near-ties in error by explanation granularity and reporting the full
  evidence behind the ranking.
"""

from repro.selection.criteria import GranularityProfile, ModelScore, score_model
from repro.selection.selector import ModelSelector, SelectionConfig, SelectionReport

__all__ = [
    "GranularityProfile",
    "ModelScore",
    "score_model",
    "ModelSelector",
    "SelectionConfig",
    "SelectionReport",
]
