#!/usr/bin/env python3
"""Training the neural cost model with COMET feedback between rounds.

Implements the Section 7 proposal that COMET's feedback can steer training
towards finer-grained features: after an initial training phase, each round
explains a sample of training blocks, finds the blocks whose predictions rest
on the instruction count alone, and augments the training set with
perturbations of those blocks in which the count is *not* predictive (their
instructions and dependencies are preserved, filler instructions change).

For comparison, a plain model is trained with the same total epoch budget on
the un-augmented data.  The run is kept small (a few hundred blocks, a tiny
LSTM) so it finishes in a few minutes; raise the constants for a longer
study.

Usage::

    python examples/explanation_guided_training.py
"""

from repro.core import ExplainerConfig, IthemalConfig
from repro.data import BHiveDataset, train_test_split
from repro.models.ithemal import IthemalCostModel
from repro.train import (
    AugmentationConfig,
    ExplanationGuidedTrainer,
    GranularityFeedback,
    GuidedTrainingConfig,
)

DATASET_SIZE = 150
ROUNDS = 2
FEEDBACK_EXPLAINER = ExplainerConfig(
    coverage_samples=80, max_precision_samples=50, min_precision_samples=15
)


def main() -> None:
    dataset = BHiveDataset.synthesize(
        DATASET_SIZE, min_instructions=3, max_instructions=9, microarchs=("hsw",), rng=0
    )
    train, test = train_test_split(dataset, 0.2, rng=1)
    blocks, targets = train.blocks(), train.throughputs("hsw")
    test_blocks, test_targets = test.blocks(), test.throughputs("hsw")

    ithemal_config = IthemalConfig(embedding_size=16, hidden_size=16, epochs=2)
    guided_config = GuidedTrainingConfig(
        rounds=ROUNDS,
        initial_epochs=2,
        epochs_per_round=1,
        feedback_sample=8,
        explainer=FEEDBACK_EXPLAINER,
        augmentation=AugmentationConfig(variants_per_block=2),
        seed=0,
    )

    print("=== Explanation-guided training ===")
    trainer = ExplanationGuidedTrainer(
        "hsw", ithemal_config=ithemal_config, guided_config=guided_config
    )
    guided = trainer.train(
        blocks,
        targets,
        validation_blocks=test_blocks,
        validation_throughputs=test_targets,
        rng=0,
    )
    print(guided.render())
    print()

    print("=== Plain training (same total epochs, no feedback) ===")
    plain = IthemalCostModel("hsw", ithemal_config, rng=0)
    total_epochs = guided_config.initial_epochs + ROUNDS * guided_config.epochs_per_round
    plain.train(blocks, targets, epochs=total_epochs, rng=0)
    plain_mape = plain.evaluate_mape(test_blocks, test_targets)
    guided_mape = guided.model.evaluate_mape(test_blocks, test_targets)

    print(f"Plain model test MAPE:  {plain_mape:.1f}%")
    print(f"Guided model test MAPE: {guided_mape:.1f}%")
    print()

    print("=== Post-training granularity check (8-block sample) ===")
    collector = GranularityFeedback(FEEDBACK_EXPLAINER, seed=5)
    for label, model in (("plain", plain), ("guided", guided.model)):
        feedback = collector.collect(model, test_blocks, sample_size=8, rng=5)
        summary = GranularityFeedback.summarize(feedback)
        print(
            f"{label:>6}: {summary.pct_coarse:.0f}% coarse-only explanations, "
            f"{summary.pct_fine_grained:.0f}% fine-grained"
        )


if __name__ == "__main__":
    main()
