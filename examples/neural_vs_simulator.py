#!/usr/bin/env python3
"""Compare explanations for a neural and a simulation-based cost model.

This reproduces the paper's utility workflow (Section 6.3) end to end on a
small scale:

1. synthesise a BHive-style dataset and label it with the hardware oracle,
2. train the Ithemal-like neural cost model on it,
3. explain both the neural model and the uiCA-style simulator on a handful of
   test blocks,
4. report each model's MAPE next to the share of explanations built from
   coarse-grained (η) vs fine-grained (instruction / dependency) features.

Runs in roughly a minute.  Pass ``--blocks N`` to change the number of
explained blocks.
"""

import argparse

from repro.core import CachedCostModel, CometExplainer, ExplainerConfig, UiCACostModel, train_ithemal
from repro.data import BHiveDataset, explanation_test_set, train_test_split
from repro.eval.metrics import feature_kind_percentages, mean_absolute_percentage_error
from repro.utils.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--blocks", type=int, default=8, help="blocks to explain")
    parser.add_argument("--dataset", type=int, default=300, help="dataset size")
    parser.add_argument("--microarch", default="hsw", choices=["hsw", "skl"])
    args = parser.parse_args()

    print(f"Synthesising a {args.dataset}-block dataset ...")
    dataset = BHiveDataset.synthesize(args.dataset, rng=0)
    train, _ = train_test_split(dataset, 0.15, rng=1)

    print("Training the neural cost model ...")
    ithemal = CachedCostModel(
        train_ithemal(train.blocks(), train.throughputs(args.microarch), args.microarch)
    )
    uica = CachedCostModel(UiCACostModel(args.microarch))

    test = explanation_test_set(dataset, args.blocks, rng=2)
    targets = test.throughputs(args.microarch)

    rows = []
    for label, model in (("Ithemal (neural)", ithemal), ("uiCA (simulator)", uica)):
        predictions = [model.predict(block) for block in test.blocks()]
        error = mean_absolute_percentage_error(predictions, targets)
        explainer = CometExplainer(model, ExplainerConfig(), rng=3)
        explanations = [explainer.explain(block) for block in test.blocks()]
        pct = feature_kind_percentages(explanations)
        rows.append(
            [label, error, pct["num_instrs"], pct["inst"], pct["dep"]]
        )
        print(f"\nExample explanation for {label}:")
        print(explanations[0].describe())

    print()
    print(
        render_table(
            ["Model", "MAPE (%)", "% expl. with η", "% expl. with inst", "% expl. with δ"],
            rows,
            title="Error vs explanation granularity (cf. paper Figure 2)",
            precision=1,
        )
    )
    print(
        "\nExpected shape: the neural model has the higher error and its "
        "explanations lean more on the coarse-grained instruction count."
    )


if __name__ == "__main__":
    main()
