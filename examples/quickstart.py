#!/usr/bin/env python3
"""Quickstart: explain a cost model's prediction for one basic block.

Runs in a few seconds.  It parses the motivating example from the paper
(Listing 1), builds two cost models that need no training — the crude
interpretable model ``C`` and the uiCA-style pipeline simulator — and prints
COMET's explanation of each model's throughput prediction.

Usage::

    python examples/quickstart.py
"""

from repro.core import (
    AnalyticalCostModel,
    BasicBlock,
    CachedCostModel,
    CometExplainer,
    ExplainerConfig,
    UiCACostModel,
)

#: Listing 1(a) of the paper: a small block with a RAW dependency between the
#: first two instructions.
MOTIVATING_EXAMPLE = """
    add rcx, rax
    mov rdx, rcx
    pop rbx
"""


def main() -> None:
    block = BasicBlock.from_text(MOTIVATING_EXAMPLE)
    print("Basic block under explanation:")
    print(block.text)
    print()
    print("Data dependencies:", [dep.label() for dep in block.dependencies])
    print()

    models = [
        (AnalyticalCostModel("hsw"), ExplainerConfig(epsilon=0.2, relative_epsilon=0.0)),
        (CachedCostModel(UiCACostModel("hsw")), ExplainerConfig()),
    ]
    for model, config in models:
        explainer = CometExplainer(model, config, rng=0)
        explanation = explainer.explain(block)
        print(explanation.describe())
        print(f"  ({explanation.num_queries} cost-model queries)")
        print()


if __name__ == "__main__":
    main()
