#!/usr/bin/env python3
"""Global explanations: why the paper explains one block at a time.

Section 4 of the paper argues that global explanations (one rule describing
every block whose predicted cost falls in a target set) only exist for very
simple cost models, using a hypothetical model M1 that predicts 2 cycles iff
a block has exactly 8 instructions.  This script runs the global explainer on
both M1 and the realistic uiCA stand-in: the rule for M1 is recovered exactly
(precision = recall = 1), while the best rule for the realistic model over a
comparable prediction band is visibly weaker — the empirical motivation for
COMET's block-specific explanations.

Runs in well under a minute.

Usage::

    python examples/global_explanations.py
"""

from repro.core import CachedCostModel, UiCACostModel
from repro.data import BHiveDataset
from repro.globalx import GlobalExplainer, InstructionCountThresholdModel

NUM_BLOCKS = 120


def main() -> None:
    dataset = BHiveDataset.synthesize(
        NUM_BLOCKS, min_instructions=4, max_instructions=10, microarchs=("hsw",), rng=7
    )
    blocks = dataset.blocks()

    print("=== Toy model M1: 2 cycles iff the block has 8 instructions ===")
    m1 = InstructionCountThresholdModel(target_count=8)
    m1_explanation = GlobalExplainer(m1, blocks).explain_value(2.0, epsilon=0.25)
    print(m1_explanation.describe())
    print()

    print("=== Realistic model: uiCA stand-in, middle prediction band ===")
    uica = CachedCostModel(UiCACostModel("hsw"))
    explainer = GlobalExplainer(uica, blocks)
    predictions = sorted(explainer.predictions())
    low = predictions[len(predictions) // 3]
    high = predictions[2 * len(predictions) // 3]
    uica_explanation = explainer.explain_range(low, high)
    print(uica_explanation.describe())
    print()

    print(
        "Take-away: the toy model admits a perfect global rule "
        f"(F1 = {m1_explanation.f1:.2f}), the realistic model does not "
        f"(F1 = {uica_explanation.f1:.2f}) — hence block-specific explanations."
    )


if __name__ == "__main__":
    main()
