#!/usr/bin/env python3
"""Reproduce the paper's Section 6.4 case studies (Listings 2 and 3).

Explains the two case-study blocks with the uiCA-style simulator, the
Ithemal-like neural model and the crude interpretable model, printing the
predictions and explanation feature sets side by side.  Runs in a couple of
minutes (the neural model is trained first).
"""

from repro.core import (
    AnalyticalCostModel,
    BasicBlock,
    CachedCostModel,
    CometExplainer,
    ExplainerConfig,
    UiCACostModel,
    train_ithemal,
)
from repro.data import BHiveDataset, HardwareOracle
from repro.eval.case_studies import CASE_STUDY_BLOCKS


def main() -> None:
    microarch = "hsw"
    print("Preparing cost models (training the neural model) ...")
    dataset = BHiveDataset.synthesize(300, rng=0)
    neural = CachedCostModel(
        train_ithemal(dataset.blocks(), dataset.throughputs(microarch), microarch)
    )
    simulator = CachedCostModel(UiCACostModel(microarch))
    crude = AnalyticalCostModel(microarch)
    oracle = HardwareOracle(microarch)

    default_config = ExplainerConfig()
    crude_config = ExplainerConfig(epsilon=0.2, relative_epsilon=0.0)

    for name, text in CASE_STUDY_BLOCKS.items():
        block = BasicBlock.from_text(text)
        print("=" * 72)
        print(f"{name}\n{block.text}\n")
        print(f"  'hardware' (oracle) throughput: {oracle.measure(block):.2f} cycles\n")
        for label, model, config in (
            ("Ithemal (neural)", neural, default_config),
            ("uiCA (simulator)", simulator, default_config),
            ("crude analytical C", crude, crude_config),
        ):
            explanation = CometExplainer(model, config, rng=7).explain(block)
            features = ", ".join(f.describe() for f in explanation.features) or "(empty)"
            print(
                f"  {label:<20} prediction {explanation.prediction:6.2f} cycles  "
                f"explanation: {features}"
            )
        print()


if __name__ == "__main__":
    main()
