#!/usr/bin/env python3
"""Selecting between cost models using COMET explanations.

The paper's discussion (Section 7) suggests using COMET to choose among
similar-performing cost models: prefer the one whose explanations rely on
fine-grained block features.  This script synthesizes a small labelled block
set, scores three candidates — the uiCA-style simulator, the LLVM-MCA-style
port-pressure baseline and a deliberately coarse "count-only" heuristic — and
prints the selection report.

Runs in a couple of minutes (every candidate is explained on every block).

Usage::

    python examples/model_selection.py
"""

from repro.core import CachedCostModel, ExplainerConfig, UiCACostModel
from repro.data import BHiveDataset
from repro.models import CallableCostModel, PortPressureCostModel
from repro.selection import ModelSelector, SelectionConfig

NUM_BLOCKS = 12


def main() -> None:
    dataset = BHiveDataset.synthesize(
        80, min_instructions=4, max_instructions=9, microarchs=("hsw",), rng=3
    ).sample(NUM_BLOCKS, rng=4)
    blocks = dataset.blocks()
    targets = dataset.throughputs("hsw")

    candidates = {
        "uica": CachedCostModel(UiCACostModel("hsw")),
        "port-pressure": CachedCostModel(PortPressureCostModel("hsw")),
        "count-only": CallableCostModel(
            lambda block: 0.25 * block.num_instructions, name="count-only"
        ),
    }

    selector = ModelSelector(
        blocks,
        targets,
        SelectionConfig(
            mape_tolerance=5.0,
            explainer=ExplainerConfig(
                coverage_samples=150, max_precision_samples=80, min_precision_samples=20
            ),
            seed=0,
        ),
    )
    report = selector.rank(candidates)
    print(report.render())


if __name__ == "__main__":
    main()
