#!/usr/bin/env python3
"""Debug a cost model: find its worst predictions and ask COMET *why*.

This is the compiler-engineer workflow the paper motivates: given a neural
cost model, find blocks where it disagrees most with measurements, then use
COMET's explanations (for the neural model and for a trusted simulator) to
see which block features each model is relying on.  A neural model that
explains a division-bound block with "the block has 6 instructions" is
ignoring the feature that actually matters — exactly the failure mode of the
paper's case study 2.

Runs in about a minute.
"""

import argparse

from repro.core import CachedCostModel, CometExplainer, ExplainerConfig, UiCACostModel, train_ithemal
from repro.data import BHiveDataset, train_test_split


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", type=int, default=300, help="dataset size")
    parser.add_argument("--worst", type=int, default=3, help="worst blocks to analyse")
    parser.add_argument("--microarch", default="hsw", choices=["hsw", "skl"])
    args = parser.parse_args()

    dataset = BHiveDataset.synthesize(args.dataset, rng=0)
    train, held_out = train_test_split(dataset, 0.25, rng=1)

    print("Training the neural cost model ...")
    neural = CachedCostModel(
        train_ithemal(train.blocks(), train.throughputs(args.microarch), args.microarch)
    )
    simulator = CachedCostModel(UiCACostModel(args.microarch))

    # Rank held-out blocks by the neural model's relative error.
    scored = []
    for record in held_out:
        measured = record.throughput(args.microarch)
        predicted = neural.predict(record.block)
        scored.append((abs(predicted - measured) / max(measured, 1e-6), record, predicted))
    scored.sort(key=lambda item: item[0], reverse=True)

    explainer_neural = CometExplainer(neural, ExplainerConfig(), rng=4)
    explainer_sim = CometExplainer(simulator, ExplainerConfig(), rng=4)

    for rank, (relative_error, record, predicted) in enumerate(scored[: args.worst], 1):
        measured = record.throughput(args.microarch)
        print("=" * 72)
        print(f"Worst prediction #{rank}: relative error {100 * relative_error:.0f}%")
        print(record.block.text)
        print(
            f"\n  measured {measured:.2f} cycles | neural {predicted:.2f} | "
            f"simulator {simulator.predict(record.block):.2f}"
        )
        neural_expl = explainer_neural.explain(record.block)
        sim_expl = explainer_sim.explain(record.block)
        print("\n  Neural model relies on:")
        for feature in neural_expl.features or []:
            print(f"    - {feature.describe()}")
        if not neural_expl.features:
            print("    (nothing: its prediction barely reacts to perturbations)")
        print("  Simulator relies on:")
        for feature in sim_expl.features or []:
            print(f"    - {feature.describe()}")
        print()


if __name__ == "__main__":
    main()
