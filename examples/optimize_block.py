#!/usr/bin/env python3
"""Explanation-guided optimization of a division-bound basic block.

Demonstrates the Section 7 use case: COMET's explanation tells the optimizer
*which* features of the block the cost model blames for its predicted cost,
and a Stoke-style stochastic rewrite search spends its proposals there.  The
script compares the guided search against an unguided search with the same
proposal budget, both minimising the uiCA stand-in's predicted throughput for
the paper's case-study-2 block (the division-bound block of Listing 3).

Runs in well under a minute.

Usage::

    python examples/optimize_block.py
"""

from repro.core import BasicBlock, CachedCostModel, ExplainerConfig, UiCACostModel
from repro.guidance import diagnose, optimize_block

#: Listing 3 of the paper: an expensive div instruction plus several
#: data dependencies make this block slow (39 cycles on real hardware).
CASE_STUDY_2 = """
    mov ecx, edx
    xor edx, edx
    lea rax, [rcx + rax - 1]
    div rcx
    mov rdx, rcx
    imul rax, rcx
"""

EXPLAINER = ExplainerConfig(coverage_samples=150, max_precision_samples=80)
STEPS = 30


def main() -> None:
    block = BasicBlock.from_text(CASE_STUDY_2)
    model = CachedCostModel(UiCACostModel("hsw"))

    print("=== Bottleneck diagnosis (COMET + pipeline simulator) ===")
    report = diagnose(block, model, config=EXPLAINER, rng=0)
    print(report.describe())
    print()

    print("=== Explanation-guided rewrite search ===")
    guided = optimize_block(
        CachedCostModel(UiCACostModel("hsw")),
        block,
        guided=True,
        steps=STEPS,
        rng=1,
        explainer_config=EXPLAINER,
    )
    print(guided.describe())
    print()

    print("=== Unguided rewrite search (same budget) ===")
    unguided = optimize_block(
        CachedCostModel(UiCACostModel("hsw")), block, guided=False, steps=STEPS, rng=1
    )
    print(unguided.describe())
    print()

    print(
        f"Guided best: {guided.best_cost:.2f} cycles | "
        f"Unguided best: {unguided.best_cost:.2f} cycles "
        f"(original {guided.original_cost:.2f})"
    )


if __name__ == "__main__":
    main()
